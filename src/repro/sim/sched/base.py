"""Scheduler backend interface for the event kernel.

A :class:`Scheduler` owns the pending-event store for one
:class:`~repro.sim.engine.Simulator`.  The contract every backend must
honour — and that :mod:`tests.sim.test_sched_backends` enforces with a
cross-backend differential fuzz — is *bit-exact pop ordering*:

* Events pop in strictly ascending ``(time, seq)`` order; ``seq`` is the
  kernel's monotonically increasing schedule counter, so same-timestamp
  events pop in FIFO schedule order.
* Cancellation is lazy: :meth:`~repro.sim.engine.Event.cancel` marks the
  event dead and the backend discards the entry whenever it surfaces (or
  earlier, during compaction).  Dead events are recycled through the
  simulator's shared free list the moment the backend drops them.
* :meth:`pop_due` never pops an event beyond the horizon, and never loses
  or reorders entries when probed with a horizon before the next event —
  a backend may advance internal cursors past *empty* regions, but an
  event scheduled later into an already-passed region must still pop in
  correct global order (backends keep a sorted front buffer, or never
  advance past non-empty regions, to guarantee this).

Backends store ``(time, seq, event)`` triples (possibly transformed, e.g.
negated for tail-popping), never bare events, so ordering comparisons run
as C tuple comparisons and never reach the event object.

Engine inlining (one note for all backends — the per-backend copies of
this rationale were consolidated here):

* ``Simulator._bind_backend`` recognises the three stock backends by
  exact type and drains each through a dedicated inlined loop in
  ``run()`` — heap head pops, calendar hot-bucket tail pops, wheel due-
  buffer tail pops — with no function call per event.  ``schedule()``
  likewise inserts straight into the recognised backend's store.  The
  inlined copies must be kept in sync with the methods here; the slow
  corners (rebuilds, refills, year scans) stay behind method calls.
* ``Event.cancel`` inlines :meth:`Scheduler.note_cancel`; the method
  remains for direct backend users and tests.
* Subclassing a stock backend (test shadows, instrumentation) opts out
  of all inlining automatically — the engine falls back to the generic
  bound ``push``/``pop_due``/``pop_batch`` path.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

# Compaction fires when a backend holds more dead entries than live ones
# and is big enough for the O(n) sweep to pay for itself.  Shared by all
# backends so timer-churn behaviour is uniform.
COMPACT_MIN_ENTRIES = 256

Entry = Tuple[int, int, object]  # (time_ns, seq, event)


class Scheduler:
    """Base class: shared dead-entry bookkeeping and the backend API."""

    #: registry / display name, overridden per backend
    name = "abstract"

    def __init__(self) -> None:
        # The simulator's free list is attached via bind_free_list() so
        # every backend (and a mid-run backend switch) recycles retired
        # Event objects through the same pool.
        self._free: List[object] = []
        self._size = 0  # stored entries, live + dead
        self._dead = 0  # stored entries whose event is cancelled

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def bind_free_list(self, free: List[object]) -> None:
        """Share the simulator's Event free list with this backend."""
        self._free = free

    def stored(self) -> int:
        """Stored entries, live + dead (heap overrides with len())."""
        return self._size

    # ------------------------------------------------------------------
    # Core API (implemented per backend)
    # ------------------------------------------------------------------
    def push(self, time_ns: int, seq: int, event) -> None:
        """Store ``event`` keyed by ``(time_ns, seq)``."""
        raise NotImplementedError

    def pop_due(self, horizon_ns: int):
        """Pop and return the earliest live event with time <= horizon.

        Returns None when no live event is due; dead entries encountered
        on the way are freed.  The returned event still carries its
        ``time`` attribute (the caller advances the clock from it).
        """
        raise NotImplementedError

    def pop_batch(self, horizon_ns: int, out: list) -> int:
        """Pop every due live event sharing the earliest due time.

        Appends the group to ``out`` in ``(time, seq)`` order and returns
        its size (0 when nothing is due).  This default builds on
        :meth:`pop_due`, so any third-party backend is batch-correct for
        free; stock backends may override with a direct head-run pop.
        """
        first = self.pop_due(horizon_ns)
        if first is None:
            return 0
        out.append(first)
        n = 1
        time_ns = first.time
        while True:
            event = self.pop_due(time_ns)
            if event is None:
                return n
            out.append(event)
            n += 1

    def next_live_time(self) -> Optional[int]:
        """Time of the earliest live event, or None when empty."""
        raise NotImplementedError

    def peek_time(self) -> Optional[int]:
        """Non-destructive probe: earliest live event time, or None.

        The contract (enforced by the cross-backend differential test in
        :mod:`tests.sim.test_sched_backends`) is that peeking never pops,
        reorders, or loses entries — an arbitrary number of peeks between
        two pops must leave pop order bit-identical.  The shard
        coordinator (:mod:`repro.sim.shard`) calls this once per barrier
        epoch to compute the conservative horizon, so it may be O(live
        population) but must not perturb state.

        The default delegates to :meth:`next_live_time`, which every
        backend already implements non-destructively (freed dead entries
        do not count as perturbation — they were unobservable).  Backends
        with a cheap head cache may override with a fast path.
        """
        return self.next_live_time()

    def compact(self) -> None:
        """Sweep dead entries out of the store (order-preserving)."""
        raise NotImplementedError

    def drain_live(self) -> Iterator[Entry]:
        """Empty the backend, yielding live entries (any order); frees dead.

        Used when the adaptive policy migrates the population to another
        backend.  After draining, the backend is empty but reusable.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared bookkeeping
    # ------------------------------------------------------------------
    def note_cancel(self) -> None:
        """One stored entry just went dead; compact when mostly dead.

        ``Event.cancel`` inlines this logic (see the module docstring);
        the method remains for direct backend users and tests.
        """
        dead = self._dead + 1
        self._dead = dead
        if dead >= COMPACT_MIN_ENTRIES and dead * 2 > self.stored():
            self.compact()

    def __len__(self) -> int:
        """Stored entries including dead ones (diagnostics only)."""
        return self.stored()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} size={self.stored()} dead={self._dead}>"
        )
