"""Measurement: samplers, FCT collection, statistics."""

from .fct import SIZE_BUCKETS, FctCollector, FctRecord, bucket_for_size
from .samplers import (
    PeriodicSampler,
    QueueSampler,
    RateSampler,
    convergence_time_ns,
)
from .stats import (
    cdf_points,
    jain_fairness,
    mean,
    percentile,
    summarize_tail,
    time_average,
)

__all__ = [
    "SIZE_BUCKETS",
    "FctCollector",
    "FctRecord",
    "bucket_for_size",
    "PeriodicSampler",
    "QueueSampler",
    "RateSampler",
    "convergence_time_ns",
    "cdf_points",
    "jain_fairness",
    "mean",
    "percentile",
    "summarize_tail",
    "time_average",
]
