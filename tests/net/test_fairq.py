"""FairQ: switch-computed fair shares, selectively ECN-marked."""

import pytest

from repro.experiments.common import build_topology
from repro.metrics.stats import jain_fairness
from repro.net.fairq import FairqParams, FairqPortAgent, make_fairq_queue
from repro.net.queues import EcnQueue
from repro.net.topology import dumbbell
from repro.sim.units import milliseconds
from repro.transport.registry import open_flow


def test_params_validation():
    FairqParams()
    with pytest.raises(ValueError, match="slot"):
        FairqParams(slot_us=0)
    with pytest.raises(ValueError, match="utilization"):
        FairqParams(target_utilization=0.0)
    with pytest.raises(ValueError, match="utilization"):
        FairqParams(target_utilization=1.5)
    with pytest.raises(ValueError, match="ecn threshold"):
        FairqParams(ecn_threshold_bytes=0)


def test_backstop_queue_threshold():
    queue = make_fairq_queue(FairqParams(), 256_000, 10**9)
    assert isinstance(queue, EcnQueue)
    assert queue.mark_threshold_bytes == 96_000
    # Threshold never exceeds the physical buffer.
    small = make_fairq_queue(FairqParams(), 64_000, 10**9)
    assert small.mark_threshold_bytes == 64_000


def test_agents_installed_on_every_switch_port():
    topo = build_topology(dumbbell, "fairq", buffer_bytes=256_000, n_senders=2)
    for switch in topo.switches:
        for port in switch.ports:
            assert isinstance(port.agent, FairqPortAgent)
    for host in topo.hosts:  # FairQ is a switch function, hosts stay plain
        for port in host.ports:
            assert port.agent is None


def test_contended_flows_converge_to_fair_share():
    """Four long-lived flows into one port: the agent publishes the
    budget split four ways, marks only overshooting bytes, and the flows
    end up near-perfectly fair with zero drops."""
    topo = build_topology(
        dumbbell, "fairq", buffer_bytes=256_000, n_senders=4, seed=1
    )
    senders = [
        open_flow(topo.host(i), topo.host(4), "fairq") for i in range(4)
    ]
    topo.network.run_for(milliseconds(40))
    agent = topo.bottleneck("main").agent
    # Steady state: the published share is the budget split across the
    # competitors (3 or 4 active in any given slot, as ECN backoff
    # briefly idles a flow) — never the whole budget.
    assert (
        agent.slot_budget_bytes / 5
        < agent.fair_share_bytes
        <= agent.slot_budget_bytes / 3
    )
    assert agent.marked_packets > 0
    assert topo.network.total_drops() == 0
    rates = [s.stats.bytes_acked for s in senders]
    assert jain_fairness(rates) > 0.99


def test_selective_marking_spares_compliant_flows():
    """A heavy flow against a light one: only the overshooting flow's
    packets are marked (depth-based EcnQueue would hit both)."""
    topo = build_topology(
        dumbbell, "fairq", buffer_bytes=256_000, n_senders=2, seed=1
    )
    heavy = open_flow(topo.host(0), topo.host(2), "fairq")
    marked = {True: 0, False: 0}  # is_heavy -> CE-marked deliveries
    receiver_host = topo.hosts[2]
    original = receiver_host.handle_packet

    def spy(packet, in_port_index=0):
        if packet.payload > 0:
            marked[packet.sport == heavy.flow_key[2]] += bool(packet.ecn_ce)
        return original(packet, in_port_index)

    receiver_host.handle_packet = spy
    # The light flow: short trickle bursts well under the fair share.
    light = open_flow(
        topo.host(1), topo.host(2), "fairq", size_bytes=40_000,
        start_ns=milliseconds(5),
    )
    topo.network.run_for(milliseconds(30))
    assert light.stats.bytes_acked == 40_000
    assert marked[True] > 0  # the hog was pushed back...
    assert marked[False] == 0  # ...the compliant flow never saw a mark


def test_reset_forgets_measured_state():
    topo = build_topology(
        dumbbell, "fairq", buffer_bytes=256_000, n_senders=2, seed=1
    )
    open_flow(topo.host(0), topo.host(2), "fairq")
    open_flow(topo.host(1), topo.host(2), "fairq")
    topo.network.run_for(milliseconds(5))
    agent = topo.bottleneck("main").agent
    assert agent.fair_share_bytes < agent.slot_budget_bytes
    agent.reset()
    assert agent.fair_share_bytes == agent.slot_budget_bytes
    assert agent.slot_start_ns == topo.sim.now
    assert not agent._slot_bytes


def test_fairq_runs_are_bit_identical():
    def run():
        topo = build_topology(
            dumbbell, "fairq", buffer_bytes=256_000, n_senders=4, seed=1
        )
        senders = [
            open_flow(topo.host(i), topo.host(4), "fairq") for i in range(4)
        ]
        topo.network.run_for(milliseconds(10))
        agent = topo.bottleneck("main").agent
        return (
            topo.network.sim.events_processed,
            agent.marked_packets,
            agent.slot_index,
            [s.stats.bytes_acked for s in senders],
        )

    assert run() == run()
