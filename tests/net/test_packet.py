"""Unit tests for the packet model."""

from hypothesis import given, strategies as st

from repro.net.packet import (
    ETHERNET_OVERHEAD,
    HEADER_BYTES,
    MIN_FRAME_BYTES,
    MSS,
    MTU,
    WINDOW_SENTINEL,
    Packet,
)


def make(payload=0, **kwargs):
    return Packet(1, 2, 1000, 2000, payload=payload, **kwargs)


def test_mtu_is_mss_plus_header():
    assert MTU == MSS + HEADER_BYTES == 1500


def test_full_segment_sizes():
    pkt = make(payload=MSS)
    assert pkt.size == 1500
    assert pkt.frame_size == 1500 + ETHERNET_OVERHEAD


def test_pure_ack_hits_min_frame():
    ack = make(is_ack=True)
    assert ack.size == HEADER_BYTES
    assert ack.frame_size == MIN_FRAME_BYTES


def test_flow_key_and_reverse():
    pkt = make()
    assert pkt.flow_key == (1, 2, 1000, 2000)
    assert pkt.reverse_flow_key == (2, 1, 2000, 1000)


def test_end_seq():
    pkt = make(payload=100, seq=500)
    assert pkt.end_seq == 600


def test_window_defaults_to_sentinel():
    assert make().window == WINDOW_SENTINEL
    assert WINDOW_SENTINEL > 10 * 1024 * 1024  # effectively infinite


def test_packet_ids_unique():
    ids = {make().packet_id for _ in range(100)}
    assert len(ids) == 100


def test_fresh_packet_flags_clear():
    pkt = make()
    assert not pkt.ecn_ce
    assert not pkt.ecn_echo
    assert not pkt.retransmitted
    assert pkt.hops == 0


@given(st.integers(min_value=0, max_value=MSS))
def test_property_frame_at_least_min_and_at_least_size(payload):
    pkt = make(payload=payload)
    assert pkt.frame_size >= MIN_FRAME_BYTES
    assert pkt.frame_size >= pkt.size
    assert pkt.size == payload + HEADER_BYTES
