"""repro.obs — the unified telemetry subsystem.

One observability surface for everything the repo measures:

* a typed :class:`MetricRegistry` (:class:`Counter` / :class:`Gauge` /
  :class:`Histogram` / :class:`Timeline`) that legacy instrumentation —
  tracer counters, sampler series, recovery metrics, one-off transport
  gauges — migrates onto;
* a :class:`SlotTimelineRecorder` capturing every TFC agent's per-slot
  ``(T, E, rho, rtt_m, rtt_b, W, queue_bytes)`` trajectory (the paper's
  Figs. 6–8 and 14 time series);
* a :class:`FlightRecorder` ring buffer of recent trace records that
  dumps automatically when the invariant monitor fires;
* deterministic JSONL/CSV exporters wired into the experiment runner
  (``--telemetry DIR``) and the chaos driver.

Selection follows the scheduler/routing pattern: a validated mode name
(:data:`TELEMETRY_MODES`) chosen via ``SimConfig(telemetry=...)`` or the
``REPRO_TELEMETRY`` environment variable (see :mod:`repro.config`).
Capture is purely trace-driven — no scheduled events, no RNG draws — so
telemetry-on runs are bit-identical to telemetry-off runs, and the
disabled path costs one environment lookup per topology build.
"""

from .export import write_metrics_jsonl, write_slots_csv
from .flight import DEFAULT_TOPICS, FlightRecorder
from .registry import (
    Counter,
    Gauge,
    Histogram,
    Metric,
    MetricRegistry,
    Timeline,
)
from .session import (
    TELEMETRY_MODES,
    Telemetry,
    drain_pending,
    install,
    maybe_install,
)
from .slots import SLOT_FIELDS, SlotTimelineRecorder, agent_label

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricRegistry",
    "Timeline",
    "SlotTimelineRecorder",
    "SLOT_FIELDS",
    "agent_label",
    "FlightRecorder",
    "DEFAULT_TOPICS",
    "Telemetry",
    "TELEMETRY_MODES",
    "install",
    "maybe_install",
    "drain_pending",
    "write_metrics_jsonl",
    "write_slots_csv",
]
