"""Transport framework shared by TCP NewReno, DCTCP and TFC.

The library models one-directional flows (all the paper's experiments move
data one way with pure ACKs coming back): a :class:`Sender` owns the
congestion-control state and the retransmission machinery, a
:class:`Receiver` owns reassembly and ACK generation.  Protocols subclass
the hooks instead of reimplementing reliability:

* ``on_ack_accepted(packet, newly_acked)`` — cumulative ACK advanced.
* ``on_duplicate_ack(packet)`` / ``on_fast_retransmit()`` — loss signals.
* ``on_timeout()`` — RTO fired (the base class already retransmits).
* ``next_packet_hook(packet)`` — decorate an outgoing data packet
  (RM marking, ECN capability...).

Sequence numbers count payload bytes from zero; SYN/FIN do not consume
sequence space (both ends are ours, so the simplification is safe).  RTT
samples come from a timestamp echoed by the receiver, with Karn's rule
applied (no samples from retransmitted segments).
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List, Optional, Tuple

from ..net.host import Host
from ..net.packet import MSS, Packet
from ..sim.timers import Timer
from ..sim.trace import FLOW_COMPLETE, RETRANSMIT_TIMEOUT
from ..sim.units import MILLISECOND, SECOND, microseconds

DEFAULT_AWND = 1 << 20  # 1 MiB advertised window


class FlowState(enum.Enum):
    """Lifecycle of a one-directional flow."""

    CLOSED = "closed"
    SYN_SENT = "syn_sent"
    ESTABLISHED = "established"
    FIN_WAIT = "fin_wait"
    DONE = "done"


class RtoEstimator:
    """RFC 6298 retransmission-timeout estimator."""

    def __init__(
        self,
        min_rto_ns: int = 10 * MILLISECOND,
        max_rto_ns: int = 4 * SECOND,
        initial_rto_ns: int = 10 * MILLISECOND,
    ):
        self.min_rto_ns = min_rto_ns
        self.max_rto_ns = max_rto_ns
        self.srtt: Optional[float] = None
        self.rttvar: float = 0.0
        self.rto_ns = max(initial_rto_ns, min_rto_ns)
        self._backoff = 1

    def sample(self, rtt_ns: int) -> None:
        """Fold a clean (non-retransmitted) RTT sample into the estimate."""
        if self.srtt is None:
            self.srtt = float(rtt_ns)
            self.rttvar = rtt_ns / 2.0
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - rtt_ns)
            self.srtt = 0.875 * self.srtt + 0.125 * rtt_ns
        self._backoff = 1
        rto = self.srtt + max(4 * self.rttvar, microseconds(10))
        self.rto_ns = int(min(max(rto, self.min_rto_ns), self.max_rto_ns))

    def backoff(self) -> None:
        """Double the timeout after an expiry (bounded by max_rto)."""
        self._backoff = min(self._backoff * 2, 64)

    @property
    def current_rto_ns(self) -> int:
        """The timeout to arm right now, including exponential backoff."""
        return int(min(self.rto_ns * self._backoff, self.max_rto_ns))


class FlowStats:
    """Everything experiments measure about one flow."""

    def __init__(self) -> None:
        self.start_ns: Optional[int] = None
        self.established_ns: Optional[int] = None
        self.complete_ns: Optional[int] = None
        self.bytes_acked = 0
        self.bytes_sent = 0
        self.packets_sent = 0
        self.retransmissions = 0
        self.timeouts = 0
        self.fast_retransmits = 0

    @property
    def fct_ns(self) -> Optional[int]:
        """Flow completion time (start of open -> last byte acked)."""
        if self.start_ns is None or self.complete_ns is None:
            return None
        return self.complete_ns - self.start_ns


class Sender:
    """Reliable one-directional data sender with pluggable congestion control.

    ``size_bytes=None`` makes the flow long-lived: it always has data to
    send until :meth:`finish` is called.  On-off sources instead construct
    with ``size_bytes=0`` and feed data via :meth:`queue_bytes`.
    """

    protocol_name = "base"

    #: Tenant tag for multi-tenant accounting, stamped by
    #: :func:`repro.transport.registry.open_flow`; None = untenanted.
    tenant: Optional[str] = None

    def __init__(
        self,
        host: Host,
        dst_id: int,
        dport: int,
        size_bytes: Optional[int] = None,
        sport: Optional[int] = None,
        min_rto_ns: int = 10 * MILLISECOND,
        awnd_bytes: int = DEFAULT_AWND,
        on_complete: Optional[Callable[["Sender"], None]] = None,
    ):
        self.host = host
        self.sim = host.sim
        self.tracer = host.tracer
        self.src_id = host.node_id
        self.dst_id = dst_id
        self.sport = sport if sport is not None else host.allocate_port()
        self.dport = dport
        self.flow_key = (self.src_id, self.dst_id, self.sport, self.dport)
        self.on_complete = on_complete
        self.stats = FlowStats()

        self.state = FlowState.CLOSED
        self.long_lived = size_bytes is None
        self.flow_bytes = 0 if size_bytes is None else int(size_bytes)
        self.fin_on_empty = not self.long_lived and size_bytes is not None

        # Sliding-window state (byte sequence space).
        self.snd_una = 0
        self.snd_nxt = 0
        self.cwnd: float = float(MSS)
        self.peer_awnd = float(awnd_bytes)
        self.dupacks = 0
        self.recover_point: Optional[int] = None

        # seq -> (payload_len, retransmitted?)
        self._inflight: Dict[int, Tuple[int, bool]] = {}
        self._high_tx = 0  # highest sequence ever transmitted
        self.rto = RtoEstimator(min_rto_ns=min_rto_ns)
        self._rto_timer = Timer(self.sim, self._on_rto, name=f"rto:{self.flow_key}")
        self._fin_sent = False
        # Packets delivered to us (reverse direction) match the reversed key.
        host.register_connection(
            (self.dst_id, self.src_id, self.dport, self.sport), self
        )

    # ------------------------------------------------------------------
    # Application API
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Open the flow (sends SYN). Idempotent."""
        if self.state is not FlowState.CLOSED:
            return
        self.stats.start_ns = self.sim.now
        self.state = FlowState.SYN_SENT
        self._send_syn()

    def queue_bytes(self, nbytes: int) -> None:
        """Append application data to the flow (for on-off sources)."""
        if self.long_lived:
            raise ValueError("long-lived flows always have data queued")
        if self.state is FlowState.DONE:
            raise ValueError("flow already completed")
        self.flow_bytes += int(nbytes)
        self.fin_on_empty = False
        if self.state is FlowState.ESTABLISHED:
            self.try_send()

    def finish(self) -> None:
        """Stop a long-lived/on-off flow once everything queued is acked."""
        self.long_lived = False
        self.fin_on_empty = True
        if self.state is FlowState.ESTABLISHED:
            self._maybe_complete()

    def abort(self) -> None:
        """Kill the flow instantly, with no FIN (process or host crash).

        The connection just goes silent: peers and switches get no
        teardown signal and must detect the death themselves — for TFC
        this is what forces the delimiter-silence re-election backoff
        instead of the clean FIN hand-over.  ``stats.complete_ns`` stays
        None (the flow did not complete) and ``on_complete`` never fires.
        """
        self.close()
        self.state = FlowState.DONE

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def flight_size(self) -> int:
        """Bytes sent but not yet cumulatively acknowledged."""
        return self.snd_nxt - self.snd_una

    @property
    def send_window(self) -> float:
        """Usable window: min of congestion and advertised windows."""
        return min(self.cwnd, self.peer_awnd)

    @property
    def available_bytes(self) -> int:
        """Application bytes not yet transmitted."""
        if self.long_lived:
            return 1 << 30
        return max(self.flow_bytes - self.snd_nxt, 0)

    # ------------------------------------------------------------------
    # Packet construction
    # ------------------------------------------------------------------
    def _make_packet(self, **kwargs) -> Packet:
        packet = Packet(self.src_id, self.dst_id, self.sport, self.dport, **kwargs)
        packet.sent_at = self.sim.now
        return packet

    def _send_syn(self) -> None:
        syn = self._make_packet(syn=True)
        self.syn_hook(syn)
        self.host.send(syn)
        self._rto_timer.start(self.rto.current_rto_ns)

    def _transmit(self, seq: int, length: int, retransmission: bool) -> None:
        packet = self._make_packet(seq=seq, payload=length)
        packet.retransmitted = retransmission
        self.next_packet_hook(packet)
        if not retransmission:
            previous = self._inflight.get(seq)
            retransmission = previous is not None and previous[1]
        self._inflight[seq] = (length, retransmission)
        self.stats.packets_sent += 1
        self.stats.bytes_sent += length
        if retransmission:
            self.stats.retransmissions += 1
        self.host.send(packet)
        self._rto_timer.start_if_idle(self.rto.current_rto_ns)

    # ------------------------------------------------------------------
    # Transmission engine
    # ------------------------------------------------------------------
    def try_send(self) -> None:
        """Send as much new data as the window and the app buffer allow."""
        if self.state is not FlowState.ESTABLISHED:
            return
        # A segment is sent only when it fully fits in the window (floor
        # quantisation, as in packet-counting kernel stacks).  The residual
        # fraction of a window is never borrowed against — TFC's token
        # adjustment compensates the resulting undershoot at the switch.
        # The window bound is hoisted out of the loop: cwnd/peer_awnd only
        # change from ACK processing, which is never re-entered from here.
        limit = min(self.cwnd, self.peer_awnd) + 0.5
        long_lived = self.long_lived
        while True:
            if long_lived:
                length = MSS
            else:
                available = self.flow_bytes - self.snd_nxt
                length = MSS if MSS < available else available
            if length <= 0 or (self.snd_nxt - self.snd_una) + length > limit:
                break
            self._send_next(length)

    def _send_next(self, length: int) -> None:
        # Segments below the high-water mark are go-back-N retransmissions.
        retransmission = self.snd_nxt < self._high_tx
        self._transmit(self.snd_nxt, length, retransmission=retransmission)
        self.snd_nxt += length
        if self.snd_nxt > self._high_tx:
            self._high_tx = self.snd_nxt

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def on_packet(self, packet: Packet) -> None:
        """Entry point from the host demux (SYN-ACKs and ACKs)."""
        if packet.syn and packet.is_ack:
            self._on_syn_ack(packet)
        elif packet.is_ack:
            self._on_ack(packet)

    def _on_syn_ack(self, packet: Packet) -> None:
        if self.state is not FlowState.SYN_SENT:
            return  # duplicate SYN-ACK
        self.state = FlowState.ESTABLISHED
        self.stats.established_ns = self.sim.now
        self._rto_timer.stop()
        if packet.sent_at is not None and not packet.retransmitted:
            self.rto.sample(self.sim.now - packet.sent_at)
        self.on_established(packet)
        self.try_send()
        self._maybe_complete()

    def _on_ack(self, packet: Packet) -> None:
        if self.state not in (FlowState.ESTABLISHED, FlowState.FIN_WAIT):
            return
        flight_before = self.flight_size
        self.ack_hook(packet)
        if packet.ack > self.snd_una:
            newly_acked = packet.ack - self.snd_una
            self._advance_una(packet.ack)
            if packet.sent_at is not None and not packet.retransmitted:
                self.rto.sample(self.sim.now - packet.sent_at)
            self.dupacks = 0
            self.on_ack_accepted(packet, newly_acked)
            if self.flight_size > 0:
                self._rto_timer.start(self.rto.current_rto_ns)
            else:
                self._rto_timer.stop()
            self.try_send()
            self._maybe_complete()
        elif packet.ack == self.snd_una and flight_before > 0:
            self.dupacks += 1
            self.on_duplicate_ack(packet)
            self.try_send()

    def _advance_una(self, new_una: int) -> None:
        # Segments are contiguous from seq 0, so walk them off in order;
        # the filter fallback only runs if retransmissions misaligned them.
        seq = self.snd_una
        while seq < new_una:
            entry = self._inflight.pop(seq, None)
            if entry is None:
                break
            seq += entry[0]
        if seq < new_una and any(s < new_una for s in self._inflight):
            for stale in [s for s in self._inflight if s < new_una]:
                del self._inflight[stale]
        self.stats.bytes_acked += new_una - self.snd_una
        self.snd_una = new_una
        if self.snd_nxt < self.snd_una:
            # An old in-flight segment was acked after a go-back-N rewind.
            self.snd_nxt = self.snd_una

    def _maybe_complete(self) -> None:
        if self.long_lived or self.state is FlowState.DONE:
            return
        all_acked = self.fin_on_empty and self.snd_una >= self.flow_bytes
        if all_acked and self.snd_nxt >= self.flow_bytes:
            if not self._fin_sent:
                fin = self._make_packet(fin=True, seq=self.snd_nxt)
                self.next_packet_hook(fin)
                self.host.send(fin)
                self._fin_sent = True
            self.state = FlowState.DONE
            self.stats.complete_ns = self.sim.now
            self._rto_timer.stop()
            self.tracer.emit(FLOW_COMPLETE, sender=self)
            if self.on_complete is not None:
                self.on_complete(self)

    # ------------------------------------------------------------------
    # Loss recovery (shared skeleton)
    # ------------------------------------------------------------------
    def retransmit_head(self) -> None:
        """Retransmit the first unacknowledged segment."""
        if self.snd_una >= self.snd_nxt:
            return
        length = self._inflight.get(self.snd_una, (min(MSS, self.snd_nxt - self.snd_una), False))[0]
        self._transmit(self.snd_una, length, retransmission=True)

    def _on_rto(self) -> None:
        if self.state is FlowState.DONE:
            return
        if self.state is FlowState.SYN_SENT:
            self.rto.backoff()
            self._send_syn()
            return
        if self.flight_size == 0:
            return
        self.stats.timeouts += 1
        self.tracer.emit(RETRANSMIT_TIMEOUT, sender=self)
        self.rto.backoff()
        self.on_timeout()
        # Go-back-N: rewind to the cumulative ACK point and resend from
        # there as the window reopens (middle holes would otherwise each
        # need their own backed-off RTO and the flow would stall).
        self.snd_nxt = self.snd_una
        self._inflight.clear()
        self.dupacks = 0
        self.try_send()
        self._rto_timer.start(self.rto.current_rto_ns)

    # ------------------------------------------------------------------
    # Protocol hooks (overridden by NewReno / DCTCP / TFC)
    # ------------------------------------------------------------------
    def syn_hook(self, packet: Packet) -> None:
        """Decorate the SYN (TFC marks it RM)."""

    def next_packet_hook(self, packet: Packet) -> None:
        """Decorate an outgoing data packet."""

    def ack_hook(self, packet: Packet) -> None:
        """Observe every ACK before cumulative processing (TFC windows)."""

    def on_established(self, packet: Packet) -> None:
        """Handshake completed."""

    def on_ack_accepted(self, packet: Packet, newly_acked: int) -> None:
        """Cumulative ACK advanced by ``newly_acked`` bytes."""

    def on_duplicate_ack(self, packet: Packet) -> None:
        """A duplicate ACK arrived (dupack counter already incremented)."""

    def on_timeout(self) -> None:
        """An RTO fired (head retransmission happens in the base class)."""

    def close(self) -> None:
        """Tear down demux state (tests and teardown paths)."""
        self._rto_timer.stop()
        self.host.unregister_connection(
            (self.dst_id, self.src_id, self.dport, self.sport)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} {self.flow_key} state={self.state.value}"
            f" una={self.snd_una} nxt={self.snd_nxt} cwnd={self.cwnd:.0f}>"
        )


class Receiver:
    """Reassembly plus per-packet cumulative ACK generation."""

    #: Tenant tag mirroring the sender's (see :class:`Sender.tenant`).
    tenant: Optional[str] = None

    def __init__(self, host: Host, flow_key, awnd_bytes: int = DEFAULT_AWND):
        self.host = host
        self.sim = host.sim
        self.flow_key = flow_key  # key of the incoming data direction
        self.awnd_bytes = awnd_bytes
        self.rcv_nxt = 0
        self.bytes_received = 0
        #: Segments that arrived ahead of ``rcv_nxt`` (reordering gauge;
        #: the spray routing policy drives this hard on purpose).
        self.reordered_segments = 0
        self._out_of_order: List[Tuple[int, int]] = []  # sorted (seq, end)
        self.fin_seen = False
        host.register_connection(flow_key, self)

    # ------------------------------------------------------------------
    def on_packet(self, packet: Packet) -> None:
        """Entry point from host demux (SYN, data, FIN)."""
        if packet.syn and not packet.is_ack:
            self._send_ack(packet, syn=True)
            return
        if packet.fin:
            self.fin_seen = True
            self._send_ack(packet)
            return
        if packet.payload > 0 or packet.rm:
            self._accept_data(packet)
            self._send_ack(packet)

    def _accept_data(self, packet: Packet) -> None:
        seq, end = packet.seq, packet.end_seq
        if end <= self.rcv_nxt:
            return  # pure duplicate
        if seq <= self.rcv_nxt:
            self.bytes_received += end - max(seq, self.rcv_nxt)
            self.rcv_nxt = end
            self._drain_out_of_order()
        else:
            self._store_out_of_order(seq, end)

    def _store_out_of_order(self, seq: int, end: int) -> None:
        self.reordered_segments += 1
        merged = []
        for lo, hi in self._out_of_order:
            if end < lo or seq > hi:
                merged.append((lo, hi))
            else:
                seq, end = min(seq, lo), max(end, hi)
        merged.append((seq, end))
        merged.sort()
        self._out_of_order = merged

    def _drain_out_of_order(self) -> None:
        while self._out_of_order and self._out_of_order[0][0] <= self.rcv_nxt:
            lo, hi = self._out_of_order.pop(0)
            if hi > self.rcv_nxt:
                self.bytes_received += hi - self.rcv_nxt
                self.rcv_nxt = hi

    # ------------------------------------------------------------------
    def _send_ack(self, data_packet: Packet, syn: bool = False) -> None:
        src, dst, sport, dport = self.flow_key
        ack = Packet(
            dst, src, dport, sport,
            ack=self.rcv_nxt,
            is_ack=True,
            syn=syn,
        )
        # Echo the timestamp for RTT sampling (Karn: skip retransmissions).
        if not data_packet.retransmitted:
            ack.sent_at = data_packet.sent_at
            ack.retransmitted = False
        else:
            ack.sent_at = None
            ack.retransmitted = True
        self.ack_decoration_hook(ack, data_packet)
        self.host.send(ack)

    def ack_decoration_hook(self, ack: Packet, data_packet: Packet) -> None:
        """Protocol hook: ECN echo (DCTCP) or RMA/window copy (TFC)."""

    def close(self) -> None:
        """Tear down demux state."""
        self.host.unregister_connection(self.flow_key)
