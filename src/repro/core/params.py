"""TFC configuration.

Defaults follow the paper's evaluation section: expected utilisation
``rho0 = 0.97``, token EWMA weight ``alpha = 7/8``, initial queue-free RTT
estimate 160 us, only RM frames of at least 1500 bytes feed the rtt_b
estimator, and the delimiter re-election backoff doubles up to ``2^7``.

The paper leaves three practical bounds unspecified; they are explicit
parameters here (and exercised by the ablation benchmarks):

* ``rho_floor`` — lower clamp on the measured utilisation before it divides
  into the token adjustment, bounding how far an idle slot can inflate T.
* ``max_token_bdp_factor`` — upper clamp on T as a multiple of the current
  bandwidth-delay product, bounding the burst a newly joining flow can get.
* ``delay_queue_limit`` — capacity of the sub-MSS ACK delay queue.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.units import microseconds


@dataclass(frozen=True)
class TfcParams:
    """Tunable constants of the TFC switch and endpoint logic."""

    rho0: float = 0.97
    """Expected link utilisation (paper section 6.1.1)."""

    alpha: float = 7.0 / 8.0
    """Weight of the historical token value in the EWMA (Eq. 8)."""

    init_rttb_ns: int = microseconds(160)
    """Initial queue-free RTT estimate (paper: 'Set rtt_b = 160 us')."""

    min_rtt_frame_bytes: int = 1500
    """Only RM frames at least this long update rtt_b (store-and-forward
    bias; paper section 4.4)."""

    max_delimiter_miss: int = 7
    """Maximum exponent k of the 2^k x rtt_last re-election backoff."""

    rho_floor: float = 0.25
    """Lower clamp on measured utilisation in the token adjustment (bounds
    the single-slot boost after idle or barely-used slots)."""

    token_adjustment: str = "iterative"
    """How Eq. 7 is applied.  ``"iterative"`` compounds the correction on
    the previous token value (``T <- T x rho0/rho``), whose fixed point is
    exactly ``rho = rho0`` even under sender window quantisation.
    ``"eq7"`` is the paper's literal form (``T = c x rtt_b x rho0/rho``),
    which converges to ``sqrt(rho0 x losses)`` instead — the ablation
    benchmark quantifies the gap (DESIGN.md section 5)."""

    min_token_bdp_factor: float = 0.25
    """Lower clamp on T as a multiple of c x rtt_b."""

    token_boost_limit: float = 1.25
    """Maximum multiplicative growth of the raw token value in one slot.
    Unbounded ratio boosts compound explosively through the near-idle
    slots of a flash crowd's acquisition phase (rho sits at rho_floor for
    a few slots while every flow waits for its first grant)."""

    queue_drain: bool = True
    """Subtract the port's standing queue from the raw token value each
    slot (the XCP/RCP spare-capacity term).  At TFC's intended zero-queue
    operating point this is a no-op; when a burst has built a backlog it
    deflates T immediately instead of waiting ~1/(1-alpha) slots of
    rho > rho0 feedback, during which a full buffer keeps dropping."""

    max_token_bdp_factor: float = 6.0
    """Upper clamp on T as a multiple of c x rtt_b.  Must leave room for
    the work-conserving compensation: rtt_b is the *minimum* RTT over all
    flows (up to ~3x below the mean in a 3-tier DCN) and window
    quantisation wastes up to one MSS per flow, both of which Eq. 7 must
    be able to compensate multiplicatively."""

    rttb_refresh_slots: int = 1024
    """Every this many slots the rtt_b running minimum restarts from the
    current measurement.  The paper keeps a global minimum; a pure global
    minimum lets one anomalously fast sample (or a long-gone short-RTT
    delimiter) depress the token base forever."""

    delay_queue_limit: int = 65536
    """Maximum number of sub-MSS RMA ACKs parked per port."""

    def __post_init__(self) -> None:
        if not 0.0 < self.rho0 <= 1.0:
            raise ValueError(f"rho0 must be in (0, 1], got {self.rho0}")
        if not 0.0 <= self.alpha < 1.0:
            raise ValueError(f"alpha must be in [0, 1), got {self.alpha}")
        if self.init_rttb_ns <= 0:
            raise ValueError("init_rttb_ns must be positive")
        if not 0.0 < self.rho_floor < 1.0:
            raise ValueError(f"rho_floor must be in (0, 1), got {self.rho_floor}")
        if self.token_adjustment not in ("iterative", "eq7"):
            raise ValueError(
                "token_adjustment must be 'iterative' or 'eq7', "
                f"got {self.token_adjustment!r}"
            )
        if not 0.0 < self.min_token_bdp_factor <= 1.0:
            raise ValueError("min_token_bdp_factor must be in (0, 1]")
        if self.rttb_refresh_slots < 1:
            raise ValueError("rttb_refresh_slots must be >= 1")
        if self.token_boost_limit < 1.0:
            raise ValueError("token_boost_limit must be >= 1")
        if self.max_token_bdp_factor < 1.0:
            raise ValueError("max_token_bdp_factor must be >= 1")
        if self.delay_queue_limit < 1:
            raise ValueError("delay_queue_limit must be >= 1")


DEFAULT_PARAMS = TfcParams()
