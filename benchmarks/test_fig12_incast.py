"""Figure 12 — testbed incast: goodput and queue vs number of senders.

Paper (1 Gbps, 256 KB buffer, 256 KB blocks): TFC holds 800-900 Mbps for
any fan-in with near-zero queue; TCP's goodput collapses beyond ~10
senders with the queue pinned at the buffer; DCTCP holds until ~50 and
then degrades.
"""

from conftest import run_once

from repro.experiments import run_fig12


SENDERS = (5, 10, 20, 40, 70, 100)


def test_fig12_incast_sweep(benchmark, report):
    results = run_once(
        benchmark, run_fig12, sender_counts=SENDERS, rounds=3
    )

    rows = []
    for n in range(len(SENDERS)):
        row = [SENDERS[n]]
        for proto in ("tfc", "dctcp", "tcp"):
            point = results[proto][n]
            row.append(f"{point.goodput_bps / 1e6:.0f}")
            row.append(f"{point.queue_max_bytes / 1000:.0f}")
        rows.append(row)
    report(
        "Fig. 12: incast goodput (Mbps) and max queue (KB) vs senders",
        ["senders", "TFC gput", "TFC q", "DCTCP gput", "DCTCP q", "TCP gput", "TCP q"],
        rows,
    )

    tfc = results["tfc"]
    tcp = results["tcp"]
    # TFC: high goodput at every fan-in, no drops, near-zero queue.
    for point in tfc:
        assert point.goodput_bps > 0.8e9
        assert point.drops == 0
        assert point.queue_max_bytes < 64_000
    # TCP: collapses at high fan-in — timeouts and buffer-filling queues.
    big_tcp = tcp[-1]
    assert big_tcp.max_timeouts_per_block > 0
    assert big_tcp.queue_max_bytes > 200_000
    assert big_tcp.goodput_bps < min(p.goodput_bps for p in tfc)
