"""repro — a reproduction of "TFC: Token Flow Control in Data Center
Networks" (EuroSys 2016).

The package bundles a packet-level discrete-event network simulator
(:mod:`repro.sim`, :mod:`repro.net`), the TCP NewReno and DCTCP baselines
(:mod:`repro.transport`), the TFC protocol itself (:mod:`repro.core`),
workload generators (:mod:`repro.workloads`), measurement utilities
(:mod:`repro.metrics`), deterministic fault injection with runtime
invariant monitoring (:mod:`repro.faults`), one driver per paper
figure plus chaos scenarios (:mod:`repro.experiments`), a unified
run configuration (:mod:`repro.config`) and the telemetry subsystem
(:mod:`repro.obs` — metric registry, per-slot timelines, flight
recorder).

Quickstart::

    from repro.net import dumbbell
    from repro.transport import configure_network, open_flow
    from repro.sim.units import seconds

    topo = dumbbell(n_senders=4)
    configure_network(topo.network, "tfc")
    flows = [open_flow(h, topo.hosts[-1], "tfc") for h in topo.hosts[:4]]
    topo.network.run_for(seconds(1))

Observability quickstart::

    from repro.config import SimConfig
    from repro.net import Network

    net = Network(config=SimConfig(seed=1, telemetry="full"))
    ...  # build topology, open flows, run
    net.telemetry.export("out/", "my_run")
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
