"""The declarative scenario schema and its eager validator.

A :class:`Scenario` is everything one simulation run needs, as data:
topology, routing policy, fabric protocol, per-tenant transport +
workload mix, a declarative fault schedule, telemetry mode, duration and
seed.  Scenarios come from YAML files (``scenarios/*.yaml``, via
:mod:`repro.scenario.loader`) or are built programmatically; either way
they pass through :func:`scenario_from_dict`, which validates **eagerly
and precisely**: every unknown field, wrong type or out-of-range value
raises a :class:`ScenarioError` naming the exact path into the document
(``tenants[1].workload.params.chunk_bytes``), so a typo'd scenario dies
at load time with a pointable error — never minutes into a farm sweep.

The schema is deliberately closed: each mapping rejects keys it does not
know, each workload kind declares its parameter table, and host
selectors are range-checked against the topology's computed host count —
all before any simulator object exists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..config.simconfig import SimConfig
from ..obs.session import TELEMETRY_MODES
from ..routing import ROUTING_NAMES
from ..workloads.collective import ALLREDUCE_MODES
from ..workloads.storage import REPLICATION_MODES


class ScenarioError(ValueError):
    """A scenario failed validation; ``path`` names the offending field."""

    def __init__(self, path: str, message: str):
        self.path = path
        super().__init__(f"{path}: {message}" if path else message)


#: Sentinel for required parameters in the tables below.
_REQUIRED = object()

#: Topology kind -> (builder param -> (type, default)).  ``buffer_bytes``
#: rides along in every kind (consumed by build_topology, not the
#: builder).  The host-count formulas let selectors validate eagerly.
TOPOLOGY_KINDS: Dict[str, Dict[str, Tuple[type, Any]]] = {
    "dumbbell": {
        "n_senders": (int, _REQUIRED),
        "n_receivers": (int, 1),
        "rate_bps": (int, 1_000_000_000),
        "link_delay_ns": (int, 20_000),
        "buffer_bytes": (int, 256_000),
    },
    "testbed": {
        "hosts_per_leaf": (int, 3),
        "n_leaves": (int, 3),
        "rate_bps": (int, 1_000_000_000),
        "link_delay_ns": (int, 5_000),
        "buffer_bytes": (int, 256_000),
    },
    "multi_bottleneck": {
        "rate_bps": (int, 1_000_000_000),
        "link_delay_ns": (int, 5_000),
        "buffer_bytes": (int, 256_000),
    },
    "leaf_spine": {
        "n_leaves": (int, 18),
        "hosts_per_leaf": (int, 20),
        "spines": (int, 1),
        "down_rate_bps": (int, 1_000_000_000),
        "up_rate_bps": (int, 10_000_000_000),
        "link_delay_ns": (int, 20_000),
        "buffer_bytes": (int, 512_000),
    },
    "fat_tree": {
        "k": (int, 4),
        "rate_bps": (int, 1_000_000_000),
        "link_delay_ns": (int, 5_000),
        "buffer_bytes": (int, 256_000),
    },
}

#: Workload kind -> (param -> (type, default)).  Durations/gaps are in
#: microseconds in the document (YAML-friendly); the run layer converts.
WORKLOAD_KINDS: Dict[str, Dict[str, Tuple[type, Any]]] = {
    "empirical": {
        "query_rate_per_s": (float, 100.0),
        "query_fanin": (int, 4),
        "short_rate_per_s": (float, 20.0),
        "background_rate_per_s": (float, 20.0),
    },
    "incast": {
        "block_bytes": (int, 64_000),
        "rounds": (int, 4),
        "request_delay_us": (float, 50.0),
    },
    "onoff": {
        "burst_bytes": (int, 64_000),
        "on_us": (float, 200.0),
        "off_us": (float, 200.0),
        "cycles": (int, 4),
    },
    "bulk": {
        "size_bytes": (int, 500_000),
        "stagger_us": (float, 0.0),
    },
    "ml_allreduce": {
        "mode": (str, "ring"),
        "chunk_bytes": (int, 16_000),
        "iterations": (int, 2),
        "compute_gap_us": (float, 0.0),
    },
    "storage": {
        "mode": (str, "fanout"),
        "replicas": (int, 2),
        "write_rate_per_s": (float, 200.0),
        "value_bytes": (int, 64_000),
    },
}


@dataclass(frozen=True)
class TopologySpec:
    """Which builder to run and with what parameters."""

    kind: str
    params: Dict[str, Any] = field(default_factory=dict)

    def host_count(self) -> int:
        """Hosts the built topology will have (selector range checks)."""
        p = self.params
        if self.kind == "dumbbell":
            return p["n_senders"] + p["n_receivers"]
        if self.kind == "testbed":
            return p["hosts_per_leaf"] * p["n_leaves"]
        if self.kind == "multi_bottleneck":
            return 4
        if self.kind == "leaf_spine":
            return p["n_leaves"] * p["hosts_per_leaf"]
        if self.kind == "fat_tree":
            return p["k"] ** 3 // 4
        raise ScenarioError("topology.kind", f"unknown kind {self.kind!r}")


@dataclass(frozen=True)
class HostSelector:
    """Which of the topology's hosts a tenant drives.

    One of: all hosts, the first/last ``n``, a half-open index
    ``range`` ``[start, stop)``, or an explicit index list.
    """

    mode: str  # "all" | "first" | "last" | "range" | "indices"
    first: int = 0
    last: int = 0
    start: int = 0
    stop: int = 0
    indices: Tuple[int, ...] = ()

    def resolve(self, n_hosts: int) -> List[int]:
        """Concrete zero-based host indices for an ``n_hosts`` topology."""
        if self.mode == "all":
            return list(range(n_hosts))
        if self.mode == "first":
            return list(range(self.first))
        if self.mode == "last":
            return list(range(n_hosts - self.last, n_hosts))
        if self.mode == "range":
            return list(range(self.start, self.stop))
        return list(self.indices)

    def max_index(self, n_hosts: int) -> int:
        indices = self.resolve(n_hosts)
        return max(indices) if indices else -1


@dataclass(frozen=True)
class WorkloadSpec:
    """One tenant's traffic generator: kind plus validated parameters."""

    kind: str
    params: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class TenantSpec:
    """A tenant: identity, transport, host subset and workload."""

    name: str
    transport: str
    workload: WorkloadSpec
    hosts: HostSelector = field(default_factory=lambda: HostSelector("all"))


#: Fault kind -> accepted fields beyond (kind, at_ms).  ``link`` faults
#: target the port on ``link[0]`` facing ``link[1]``.
FAULT_KINDS: Dict[str, Tuple[str, ...]] = {
    "link_down": ("link", "duration_ms", "reroute"),
    "link_flap": ("link", "duration_ms", "reroute"),
    "degrade_link": ("link", "factor", "duration_ms"),
    "burst_loss": ("link", "duration_ms"),
    "ack_loss": ("link", "duration_ms", "probability"),
    "pause_host": ("host", "duration_ms"),
}


@dataclass(frozen=True)
class FaultSpec:
    """One entry of the declarative fault schedule."""

    kind: str
    at_ms: float
    duration_ms: Optional[float] = None
    link: Optional[Tuple[str, str]] = None
    host: Optional[str] = None
    factor: float = 0.5
    probability: float = 0.3
    reroute: bool = False


@dataclass(frozen=True)
class Scenario:
    """A fully validated, runnable scenario description."""

    name: str
    topology: TopologySpec
    tenants: Tuple[TenantSpec, ...]
    duration_ms: float
    description: str = ""
    quick_duration_ms: Optional[float] = None
    drain_ms: float = 0.0
    seed: int = 0
    routing: Optional[str] = None
    fabric: Optional[str] = None
    telemetry: Optional[str] = None
    faults: Tuple[FaultSpec, ...] = ()
    config: Optional[SimConfig] = None

    def fabric_protocol(self) -> str:
        """The protocol configuring queues/switch agents fabric-wide."""
        if self.fabric is not None:
            return self.fabric
        transports = {tenant.transport for tenant in self.tenants}
        assert len(transports) == 1  # enforced by scenario_from_dict
        return next(iter(transports))

    def effective_duration_ns(self, quick: bool = False) -> int:
        """Run length in ns; ``quick`` selects the smoke-test duration."""
        ms = self.duration_ms
        if quick:
            ms = (
                self.quick_duration_ms
                if self.quick_duration_ms is not None
                else self.duration_ms / 4.0
            )
        return int(ms * 1_000_000)


# ----------------------------------------------------------------------
# The eager validator
# ----------------------------------------------------------------------
def _type_name(expected: type) -> str:
    return {int: "an integer", float: "a number", str: "a string",
            bool: "a boolean"}.get(expected, expected.__name__)


def _coerce(value: Any, expected: type, path: str) -> Any:
    """Type-check ``value``; ints are acceptable where floats are."""
    if expected is float and isinstance(value, int) and not isinstance(value, bool):
        return float(value)
    if expected is int and isinstance(value, bool):
        raise ScenarioError(path, f"expected {_type_name(expected)}, got {value!r}")
    if not isinstance(value, expected):
        raise ScenarioError(
            path, f"expected {_type_name(expected)}, got {value!r}"
        )
    return value


def _require_mapping(value: Any, path: str) -> Dict[str, Any]:
    if not isinstance(value, dict):
        raise ScenarioError(path, f"expected a mapping, got {value!r}")
    return value


def _take(
    mapping: Dict[str, Any],
    key: str,
    expected: type,
    default: Any,
    path: str,
) -> Any:
    """Pop ``key`` with a type check; ``_REQUIRED`` default = mandatory."""
    if key not in mapping:
        if default is _REQUIRED:
            raise ScenarioError(f"{path}.{key}", "required field is missing")
        return default
    return _coerce(mapping.pop(key), expected, f"{path}.{key}")


def _reject_unknown(mapping: Dict[str, Any], path: str, known: Sequence[str]) -> None:
    if mapping:
        extras = ", ".join(sorted(str(k) for k in mapping))
        raise ScenarioError(
            path or "scenario",
            f"unknown field(s) {extras}; known: {', '.join(sorted(known))}",
        )


def _params_from_table(
    raw: Dict[str, Any],
    table: Dict[str, Tuple[type, Any]],
    path: str,
) -> Dict[str, Any]:
    params: Dict[str, Any] = {}
    for name, (expected, default) in table.items():
        params[name] = _take(raw, name, expected, default, path)
    _reject_unknown(raw, path, list(table))
    return params


def _positive(value, path: str):
    if value <= 0:
        raise ScenarioError(path, f"must be positive, got {value!r}")
    return value


def _topology_from(raw: Any, path: str) -> TopologySpec:
    mapping = dict(_require_mapping(raw, path))
    kind = _take(mapping, "kind", str, _REQUIRED, path)
    if kind not in TOPOLOGY_KINDS:
        raise ScenarioError(
            f"{path}.kind",
            f"unknown topology kind {kind!r}; "
            f"choose from {', '.join(sorted(TOPOLOGY_KINDS))}",
        )
    params = _params_from_table(mapping, TOPOLOGY_KINDS[kind], path)
    for name, value in params.items():
        _positive(value, f"{path}.{name}")
    if kind == "fat_tree" and params["k"] % 2:
        raise ScenarioError(f"{path}.k", f"fat-tree arity must be even, got {params['k']}")
    return TopologySpec(kind, params)


def _selector_from(raw: Any, path: str) -> HostSelector:
    if raw == "all":
        return HostSelector("all")
    mapping = dict(_require_mapping(raw, path))
    if len(mapping) != 1:
        raise ScenarioError(
            path,
            "host selector must be 'all' or exactly one of "
            "{first: n}, {last: n}, {range: [start, stop]}, {indices: [...]}",
        )
    mode, value = next(iter(mapping.items()))
    if mode in ("first", "last"):
        count = _positive(_coerce(value, int, f"{path}.{mode}"), f"{path}.{mode}")
        return HostSelector(mode, **{mode: count})
    if mode == "range":
        if not isinstance(value, (list, tuple)) or len(value) != 2:
            raise ScenarioError(f"{path}.range", f"expected [start, stop], got {value!r}")
        start = _coerce(value[0], int, f"{path}.range[0]")
        stop = _coerce(value[1], int, f"{path}.range[1]")
        if start < 0 or stop <= start:
            raise ScenarioError(
                f"{path}.range", f"need 0 <= start < stop, got [{start}, {stop}]"
            )
        return HostSelector("range", start=start, stop=stop)
    if mode == "indices":
        if not isinstance(value, (list, tuple)) or not value:
            raise ScenarioError(
                f"{path}.indices", f"expected a non-empty list, got {value!r}"
            )
        indices = tuple(
            _coerce(v, int, f"{path}.indices[{i}]") for i, v in enumerate(value)
        )
        if len(set(indices)) != len(indices):
            raise ScenarioError(f"{path}.indices", "duplicate host indices")
        if min(indices) < 0:
            raise ScenarioError(f"{path}.indices", "host indices must be >= 0")
        return HostSelector("indices", indices=indices)
    raise ScenarioError(
        path, f"unknown host selector {mode!r}; "
        "choose from first, last, range, indices (or 'all')"
    )


def _workload_from(raw: Any, path: str) -> WorkloadSpec:
    mapping = dict(_require_mapping(raw, path))
    kind = _take(mapping, "kind", str, _REQUIRED, path)
    if kind not in WORKLOAD_KINDS:
        raise ScenarioError(
            f"{path}.kind",
            f"unknown workload kind {kind!r}; "
            f"choose from {', '.join(sorted(WORKLOAD_KINDS))}",
        )
    raw_params = dict(
        _require_mapping(mapping.pop("params", {}), f"{path}.params")
    )
    _reject_unknown(mapping, path, ["kind", "params"])
    params_path = f"{path}.params"
    params = _params_from_table(raw_params, WORKLOAD_KINDS[kind], params_path)
    # Semantic checks the generators would only hit at run time.
    for name in ("chunk_bytes", "block_bytes", "burst_bytes", "value_bytes",
                 "size_bytes", "iterations", "rounds", "replicas", "cycles",
                 "query_fanin"):
        if name in params:
            _positive(params[name], f"{params_path}.{name}")
    if kind == "ml_allreduce" and params["mode"] not in ALLREDUCE_MODES:
        raise ScenarioError(
            f"{params_path}.mode",
            f"unknown all-reduce mode {params['mode']!r}; "
            f"choose from {', '.join(ALLREDUCE_MODES)}",
        )
    if kind == "storage" and params["mode"] not in REPLICATION_MODES:
        raise ScenarioError(
            f"{params_path}.mode",
            f"unknown replication mode {params['mode']!r}; "
            f"choose from {', '.join(REPLICATION_MODES)}",
        )
    return WorkloadSpec(kind, params)


def _min_hosts_for(workload: WorkloadSpec) -> int:
    """Smallest host group the workload kind can run on."""
    if workload.kind == "empirical":
        return max(3, workload.params["query_fanin"] + 1)
    if workload.kind == "storage":
        return workload.params["replicas"] + 1
    return 2


def _tenant_from(raw: Any, path: str, n_hosts: int) -> TenantSpec:
    from ..transport.registry import get_protocol

    mapping = dict(_require_mapping(raw, path))
    name = _take(mapping, "name", str, _REQUIRED, path)
    if not name or any(c in name for c in " .:/"):
        raise ScenarioError(
            f"{path}.name",
            f"tenant names must be non-empty without spaces, dots, colons "
            f"or slashes (they become metric names); got {name!r}",
        )
    transport = _take(mapping, "transport", str, _REQUIRED, path)
    try:
        get_protocol(transport)
    except ValueError as exc:
        raise ScenarioError(f"{path}.transport", str(exc)) from None
    workload = _workload_from(
        mapping.pop("workload", None)
        or _raise(ScenarioError(f"{path}.workload", "required field is missing")),
        f"{path}.workload",
    )
    hosts = _selector_from(mapping.pop("hosts", "all"), f"{path}.hosts")
    _reject_unknown(mapping, path, ["name", "transport", "workload", "hosts"])
    if hosts.max_index(n_hosts) >= n_hosts:
        raise ScenarioError(
            f"{path}.hosts",
            f"selector reaches host index {hosts.max_index(n_hosts)} but the "
            f"topology only has {n_hosts} hosts",
        )
    group = len(hosts.resolve(n_hosts))
    needed = _min_hosts_for(workload)
    if group < needed:
        raise ScenarioError(
            f"{path}.hosts",
            f"workload kind {workload.kind!r} needs at least {needed} hosts, "
            f"selector provides {group}",
        )
    return TenantSpec(name=name, transport=transport, workload=workload, hosts=hosts)


def _raise(exc: Exception):
    raise exc


def _fault_from(raw: Any, path: str) -> FaultSpec:
    mapping = dict(_require_mapping(raw, path))
    kind = _take(mapping, "kind", str, _REQUIRED, path)
    if kind not in FAULT_KINDS:
        raise ScenarioError(
            f"{path}.kind",
            f"unknown fault kind {kind!r}; "
            f"choose from {', '.join(sorted(FAULT_KINDS))}",
        )
    allowed = FAULT_KINDS[kind]
    at_ms = _positive(_take(mapping, "at_ms", float, _REQUIRED, path), f"{path}.at_ms")
    duration_ms = None
    if "duration_ms" in allowed and "duration_ms" in mapping:
        duration_ms = _positive(
            _take(mapping, "duration_ms", float, _REQUIRED, path),
            f"{path}.duration_ms",
        )
    link: Optional[Tuple[str, str]] = None
    if "link" in allowed:
        raw_link = mapping.pop("link", None)
        if raw_link is None:
            raise ScenarioError(f"{path}.link", "required field is missing")
        if not isinstance(raw_link, (list, tuple)) or len(raw_link) != 2:
            raise ScenarioError(
                f"{path}.link", f"expected [node_a, node_b], got {raw_link!r}"
            )
        link = (
            _coerce(raw_link[0], str, f"{path}.link[0]"),
            _coerce(raw_link[1], str, f"{path}.link[1]"),
        )
    host = None
    if "host" in allowed:
        host = _take(mapping, "host", str, _REQUIRED, path)
    factor = 0.5
    if "factor" in allowed:
        factor = _take(mapping, "factor", float, 0.5, path)
        if not 0.0 < factor < 1.0:
            raise ScenarioError(f"{path}.factor", f"must be in (0, 1), got {factor}")
    probability = 0.3
    if "probability" in allowed:
        probability = _take(mapping, "probability", float, 0.3, path)
        if not 0.0 < probability <= 1.0:
            raise ScenarioError(
                f"{path}.probability", f"must be in (0, 1], got {probability}"
            )
    reroute = False
    if "reroute" in allowed:
        reroute = _take(mapping, "reroute", bool, False, path)
    _reject_unknown(mapping, path, ("kind", "at_ms") + allowed)
    if kind in ("link_flap", "pause_host") and duration_ms is None:
        raise ScenarioError(f"{path}.duration_ms", "required for this fault kind")
    return FaultSpec(
        kind=kind, at_ms=at_ms, duration_ms=duration_ms, link=link,
        host=host, factor=factor, probability=probability, reroute=reroute,
    )


def scenario_from_dict(raw: Dict[str, Any], source: str = "scenario") -> Scenario:
    """Validate a raw (YAML-shaped) mapping into a :class:`Scenario`.

    ``source`` prefixes every error path (usually the file name).
    """
    mapping = dict(_require_mapping(raw, source))
    # Error paths are relative to the document root; the loader adds the
    # file name when it re-raises.
    name = _take(mapping, "name", str, _REQUIRED, "")
    if not name or any(c in name for c in " :/"):
        raise ScenarioError(
            ".name", f"scenario names must be non-empty, without spaces, "
            f"colons or slashes; got {name!r}"
        )
    description = _take(mapping, "description", str, "", "")
    duration_ms = _positive(
        _take(mapping, "duration_ms", float, _REQUIRED, ""), ".duration_ms"
    )
    quick_duration_ms = mapping.pop("quick_duration_ms", None)
    if quick_duration_ms is not None:
        quick_duration_ms = _positive(
            _coerce(quick_duration_ms, float, ".quick_duration_ms"),
            ".quick_duration_ms",
        )
    drain_ms = _take(mapping, "drain_ms", float, 0.0, "")
    if drain_ms < 0:
        raise ScenarioError(".drain_ms", f"must be >= 0, got {drain_ms}")
    seed = _take(mapping, "seed", int, 0, "")

    routing = mapping.pop("routing", None)
    if routing is not None:
        routing = _coerce(routing, str, ".routing")
        if routing not in ROUTING_NAMES:
            raise ScenarioError(
                ".routing",
                f"unknown routing policy {routing!r}; "
                f"choose from {', '.join(ROUTING_NAMES)}",
            )
    telemetry = mapping.pop("telemetry", None)
    if telemetry is not None:
        telemetry = _coerce(telemetry, str, ".telemetry")
        if telemetry not in TELEMETRY_MODES:
            raise ScenarioError(
                ".telemetry",
                f"unknown telemetry mode {telemetry!r}; "
                f"choose from {', '.join(TELEMETRY_MODES)}",
            )

    topology = _topology_from(
        mapping.pop("topology", None)
        or _raise(ScenarioError(".topology", "required field is missing")),
        ".topology",
    )
    n_hosts = topology.host_count()

    raw_tenants = mapping.pop("tenants", None)
    if not isinstance(raw_tenants, list) or not raw_tenants:
        raise ScenarioError(".tenants", "expected a non-empty list of tenants")
    tenants = tuple(
        _tenant_from(entry, f".tenants[{i}]", n_hosts)
        for i, entry in enumerate(raw_tenants)
    )
    names = [t.name for t in tenants]
    if len(set(names)) != len(names):
        raise ScenarioError(".tenants", f"duplicate tenant names in {names}")

    fabric = mapping.pop("fabric", None)
    if fabric is not None:
        fabric = _coerce(fabric, str, ".fabric")
        from ..transport.registry import get_protocol

        try:
            get_protocol(fabric)
        except ValueError as exc:
            raise ScenarioError(".fabric", str(exc)) from None
    transports = {t.transport for t in tenants}
    if fabric is None and len(transports) > 1:
        raise ScenarioError(
            ".fabric",
            f"tenants use different transports ({', '.join(sorted(transports))}); "
            "an explicit fabric: protocol is required to pick the queue "
            "discipline and switch agents",
        )

    raw_faults = mapping.pop("faults", [])
    if not isinstance(raw_faults, list):
        raise ScenarioError(".faults", f"expected a list, got {raw_faults!r}")
    faults = tuple(
        _fault_from(entry, f".faults[{i}]") for i, entry in enumerate(raw_faults)
    )

    raw_config = mapping.pop("config", None)
    config = None
    if raw_config is not None:
        cfg_map = dict(_require_mapping(raw_config, ".config"))
        for reserved in ("seed", "routing", "telemetry", "transport"):
            if reserved in cfg_map:
                raise ScenarioError(
                    f".config.{reserved}",
                    f"set {reserved} at the scenario top level, not in config",
                )
        try:
            config = SimConfig.from_dict({"seed": seed, **cfg_map})
        except (ValueError, TypeError) as exc:
            raise ScenarioError(".config", str(exc)) from None

    _reject_unknown(
        mapping,
        "",
        [
            "name", "description", "duration_ms", "quick_duration_ms",
            "drain_ms", "seed", "routing", "telemetry", "topology",
            "tenants", "fabric", "faults", "config",
        ],
    )
    scenario = Scenario(
        name=name,
        description=description,
        duration_ms=duration_ms,
        quick_duration_ms=quick_duration_ms,
        drain_ms=drain_ms,
        seed=seed,
        routing=routing,
        fabric=fabric,
        telemetry=telemetry,
        topology=topology,
        tenants=tenants,
        faults=faults,
        config=config,
    )
    # Check the fabric invariant the dataclass asserts on.
    scenario.fabric_protocol()
    return scenario
