"""Tests for the experiment plumbing shared across figure drivers."""

import pytest

from repro.core.params import TfcParams
from repro.core.switch_agent import TfcPortAgent
from repro.experiments.common import (
    ALL_PROTOCOLS,
    BASELINE_PROTOCOLS,
    PROTOCOL_LABELS,
    build_topology,
    format_rate,
    format_table,
)
from repro.net.queues import DropTailQueue, EcnQueue
from repro.net.topology import dumbbell


def test_protocol_labels_cover_all():
    assert set(ALL_PROTOCOLS) == {"tfc", "dctcp", "tcp"}
    assert set(BASELINE_PROTOCOLS) == set(ALL_PROTOCOLS) | {
        "pfc", "bfc", "tbtcp", "tracks", "fairq",
    }
    # PROTOCOL_LABELS is a live view of the registry, so it covers the
    # full baseline grid (and any protocol registered at runtime).
    assert set(BASELINE_PROTOCOLS) <= set(PROTOCOL_LABELS)
    assert PROTOCOL_LABELS["bfc"] == "TCP+BFC"


def _unwrap_lossless(agent):
    """Strip the PFC wrapper the ``REPRO_LOSSLESS=pfc`` CI shard adds."""
    from repro.net.pfc import protocol_agent

    return protocol_agent(agent)


def test_build_topology_tcp_plain_queues():
    topo = build_topology(dumbbell, "tcp", buffer_bytes=128_000, n_senders=2)
    port = topo.bottleneck("main")
    assert type(port.queue) is DropTailQueue
    assert port.queue.capacity_bytes == 128_000
    assert _unwrap_lossless(port.agent) is None


def test_build_topology_dctcp_ecn_queues():
    topo = build_topology(
        dumbbell, "dctcp", buffer_bytes=128_000, ecn_threshold_bytes=9000,
        n_senders=2,
    )
    queue = topo.bottleneck("main").queue
    assert isinstance(queue, EcnQueue)
    assert queue.mark_threshold_bytes == 9000


def test_build_topology_tfc_agents_installed():
    params = TfcParams(rho0=0.93)
    topo = build_topology(
        dumbbell, "tfc", buffer_bytes=128_000, tfc_params=params, n_senders=2
    )
    agent = _unwrap_lossless(topo.bottleneck("main").agent)
    assert isinstance(agent, TfcPortAgent)
    assert agent.params.rho0 == 0.93


def test_format_table_rows():
    table = format_table(["proto", "x"], [["tfc", "1"], ["tcp", "22"]])
    lines = table.splitlines()
    assert len(lines) == 4
    assert "tfc" in lines[2]


def test_format_rate():
    assert format_rate(1.5e9) == "1.50 Gbps"
    assert format_rate(250e6) == "250 Mbps"


def test_network_helpers():
    topo = build_topology(dumbbell, "tcp", buffer_bytes=64_000, n_senders=2)
    net = topo.network
    assert net.host_by_name("S0") is topo.hosts[0]
    with pytest.raises(KeyError):
        net.host_by_name("nope")
    assert net.total_drops() == 0
