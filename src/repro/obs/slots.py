"""Per-switch-agent slot timelines — the paper's core time series.

Every TFC claim that matters is a per-slot trajectory: token value ``T``
and effective flows ``E`` (Fig. 7), queue evolution (Fig. 8), utilisation
``rho`` against its target (Fig. 14), and the ``rtt_b`` / ``rtt_m``
separation (Fig. 6).  The :class:`SlotTimelineRecorder` captures all of
them at once, for every agent, by subscribing to the ``tfc.window_update``
trace topic the agents already emit at each slot boundary.

Capture is purely reactive: the recorder schedules no simulator events,
draws no randomness, and emits no trace topics of its own, so a run with
the recorder attached is bit-identical to one without it (pinned by the
golden-determinism suite).  The only cost is the tracer taking the
subscribed ``emit`` path instead of the counter-only ``bump`` at each
slot boundary — a per-slot, not per-packet, price.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Tuple

from ..sim.trace import TFC_WINDOW_UPDATE

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.switch_agent import TfcPortAgent
    from ..net.network import Network

#: Column names for one slot record, in row order.
SLOT_FIELDS = (
    "time_ns",
    "slot",
    "tokens",
    "effective_flows",
    "rho",
    "rtt_m_ns",
    "rtt_b_ns",
    "window",
    "queue_bytes",
)

SlotRow = Tuple[int, int, float, int, float, int, int, float, int]


def agent_label(agent: "TfcPortAgent") -> str:
    """Stable human-readable agent identity (matches the invariant
    monitor's location strings): ``node[port]->peer``."""
    port = agent.port
    return f"{port.node.name}[{port.index}]->{port.peer_node.name}"


class SlotTimelineRecorder:
    """Record ``(T, E, rho, rtt_m, rtt_b, W, queue_bytes)`` per slot.

    One row is appended per ``tfc.window_update`` emission, i.e. per
    control-slot boundary per agent, keyed by the agent's stable label.
    """

    def __init__(self, network: "Network"):
        self.network = network
        self.sim = network.sim
        self.tracer = network.tracer
        self.timelines: Dict[str, List[SlotRow]] = {}
        self._labels: Dict[int, str] = {}  # id(agent) -> cached label
        self._attached = False
        self.attach()

    # ------------------------------------------------------------------
    def attach(self) -> None:
        if self._attached:
            return
        self._attached = True
        self.tracer.subscribe(TFC_WINDOW_UPDATE, self._on_window_update)

    def detach(self) -> None:
        """Stop recording (recorded timelines are kept)."""
        if not self._attached:
            return
        self._attached = False
        self.tracer.unsubscribe(TFC_WINDOW_UPDATE, self._on_window_update)

    # ------------------------------------------------------------------
    def _on_window_update(self, agent: "TfcPortAgent" = None, **_kw) -> None:
        if agent is None:
            return
        label = self._labels.get(id(agent))
        if label is None:
            label = agent_label(agent)
            self._labels[id(agent)] = label
            self.timelines.setdefault(label, [])
        self.timelines[label].append(
            (
                self.sim.now,
                agent.slot_index,
                agent.tokens,
                agent.published_e,
                agent.last_rho,
                agent.rttm_ns,
                agent.rttb_ns,
                agent.window,
                agent.port.queue.byte_length,
            )
        )

    # ------------------------------------------------------------------
    @property
    def total_rows(self) -> int:
        return sum(len(rows) for rows in self.timelines.values())

    def labels(self) -> List[str]:
        return sorted(self.timelines)

    def series(self, label: str, field: str) -> List[Tuple[int, float]]:
        """One agent's ``(time_ns, value)`` series for a named field."""
        index = SLOT_FIELDS.index(field)
        return [(row[0], row[index]) for row in self.timelines[label]]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SlotTimelineRecorder agents={len(self.timelines)}"
            f" rows={self.total_rows}>"
        )
