#!/usr/bin/env python
"""Regenerate BENCH_kernel.json at the repo root (run from the repo root).

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_kernel.py [--repeats N]
    PYTHONPATH=src python benchmarks/perf/bench_kernel.py --quick

Keeps the existing snapshot's ``baseline`` block (the pre-fast-path seed
numbers) so the history of the speedup stays in the committed file.

``--quick`` is the CI smoke mode: 1 repeat, 10% simulated durations,
lead backend only.  Quick numbers are *not* baseline-comparable, so the
snapshot on disk is left untouched — the run only proves the suite still
executes and prints the measured rows (including the ``+unbatched`` /
``+compiled`` variant dimension).
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "..", "src"))

from repro.perf.bench import main  # noqa: E402

if __name__ == "__main__":
    argv = ["--kind", "kernel"]
    if "--quick" not in sys.argv[1:]:
        # A full run refreshes the committed snapshot; quick runs must
        # never overwrite it with non-comparable numbers.
        out = "BENCH_kernel.json"
        argv += ["--out", out]
        if os.path.exists(out):
            argv += ["--keep-baseline", out]
    sys.exit(main(argv + sys.argv[1:]))
