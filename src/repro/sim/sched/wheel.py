"""Hierarchical timer-wheel backend tuned for timer/ACK churn.

Five levels of 256 slots; a level-0 slot covers 1024 ns (2**10), and each
higher level's slot spans the whole ring below it, so level L slots are
``2**(10 + 8L)`` ns wide and the wheel reaches ~13 days (2**50 ns) before
overflowing into a side list.  Scheduling is O(1): pick the level whose
span covers the delay, append to the slot indexed by the event's absolute
time bits — no ordering work at all.  That is exactly the right trade for
retransmission/delayed-ACK timers, which are overwhelmingly cancelled
before they fire: a cancelled timer costs one append and one lazy sweep,
never a heap sift.

Pops come from a sorted *due buffer*: when it empties, the wheel advances
``_wtime`` (the start of the next undrained level-0 slot) to the next
occupied slot — skipping empty regions by jumping to slot and ring
boundaries rather than ticking — cascades higher-level slots down as it
reaches them, and sorts one level-0 slot at a time into the buffer.
Entries are stored negated (``(-time, -seq, event)``) so the buffer pops
from the tail and new events landing *behind* ``_wtime`` (always possible
only for times still >= the clock) are merged by ``bisect.insort``,
preserving exact global ``(time, seq)`` order — the property the
cross-backend differential fuzz pins against the heap.
"""

from __future__ import annotations

from bisect import insort
from typing import Iterator, List, Optional, Tuple

from .base import Entry, Scheduler

_SLOT_SHIFT = 10      # level-0 slot width: 1024 ns
_RING_BITS = 8        # 256 slots per level
_RING_MASK = 255
_LEVELS = 5
_SHIFTS = tuple(_SLOT_SHIFT + _RING_BITS * level for level in range(_LEVELS))
_SPANS = tuple(1 << (shift + _RING_BITS) for shift in _SHIFTS)

Key = Tuple[int, int, object]  # (-time, -seq, event)


class TimerWheelScheduler(Scheduler):
    """O(1) hashed hierarchical timer wheel with ns-exact ordering."""

    name = "wheel"

    def __init__(self) -> None:
        super().__init__()
        self._rings: Tuple[List[List[Key]], ...] = tuple(
            [[] for _ in range(1 << _RING_BITS)] for _ in range(_LEVELS)
        )
        self._counts: List[int] = [0] * _LEVELS
        self._overflow: List[Key] = []
        self._due: List[Key] = []  # ascending keys; earliest event at tail
        self._wtime = 0  # start of the next undrained level-0 slot

    # ------------------------------------------------------------------
    def push(self, time_ns: int, seq: int, event) -> None:
        self._size += 1
        key = (-time_ns, -seq, event)
        wtime = self._wtime
        if time_ns < wtime:
            # The wheel already swept past this instant (still >= the
            # clock): merge into the sorted due buffer.
            insort(self._due, key)
            return
        delta = time_ns - wtime
        counts = self._counts
        if delta < 262144:  # 2**18
            self._rings[0][(time_ns >> 10) & 255].append(key)
            counts[0] += 1
        elif delta < 67108864:  # 2**26
            self._rings[1][(time_ns >> 18) & 255].append(key)
            counts[1] += 1
        elif delta < 17179869184:  # 2**34
            self._rings[2][(time_ns >> 26) & 255].append(key)
            counts[2] += 1
        elif delta < 4398046511104:  # 2**42
            self._rings[3][(time_ns >> 34) & 255].append(key)
            counts[3] += 1
        elif delta < 1125899906842624:  # 2**50
            self._rings[4][(time_ns >> 42) & 255].append(key)
            counts[4] += 1
        else:
            self._overflow.append(key)

    def _insert_key(self, key: Key) -> None:
        """Re-place a stored key (cascade/overflow); size already counted."""
        time_ns = -key[0]
        wtime = self._wtime
        if time_ns < wtime:
            insort(self._due, key)
            return
        delta = time_ns - wtime
        for level in range(_LEVELS):
            if delta < _SPANS[level]:
                self._rings[level][(time_ns >> _SHIFTS[level]) & 255].append(
                    key
                )
                self._counts[level] += 1
                return
        self._overflow.append(key)

    # ------------------------------------------------------------------
    def pop_due(self, horizon_ns: int):
        free = self._free
        while True:
            due = self._due
            while due:
                key = due[-1]
                event = key[2]
                if event.cancelled:
                    due.pop()
                    self._size -= 1
                    self._dead -= 1
                    free.append(event)
                    continue
                if -key[0] > horizon_ns:
                    return None
                due.pop()
                self._size -= 1
                return event
            if not self._refill():
                return None

    def next_live_time(self) -> Optional[int]:
        free = self._free
        while True:
            due = self._due
            while due:
                key = due[-1]
                if key[2].cancelled:
                    due.pop()
                    self._size -= 1
                    self._dead -= 1
                    free.append(key[2])
                    continue
                return -key[0]
            if not self._refill():
                return None

    # ------------------------------------------------------------------
    def _refill(self) -> bool:
        """Advance the wheel until the due buffer gains an entry.

        Returns False when nothing is stored anywhere.  Jumps over empty
        regions: within a ring it scans at most 256 slot headers, and an
        empty remainder of a ring bumps ``_wtime`` straight to the next
        higher-level slot boundary (safe because lower levels were empty
        and higher-level entries cannot live below that boundary).
        """
        counts = self._counts
        rings = self._rings
        free = self._free
        while True:
            if (
                counts[0] or counts[1] or counts[2]
                or counts[3] or counts[4]
            ):
                wtime = self._wtime
                # Cascade every higher-level slot whose window contains
                # the sweep position: its entries may be due anywhere
                # inside that window — i.e. *before* level-0 entries
                # further along — so they must descend first, even while
                # lower levels still hold work.  Entries strictly descend
                # (an entry inside the current level-L slot is < span of
                # level L-1 away from _wtime), so this terminates.
                cascaded = False
                for level in range(1, _LEVELS):
                    if not counts[level]:
                        continue
                    index = (wtime >> _SHIFTS[level]) & _RING_MASK
                    slot = rings[level][index]
                    if slot:
                        rings[level][index] = []
                        counts[level] -= len(slot)
                        for key in slot:
                            self._insert_key(key)
                        cascaded = True
                if cascaded and self._due:
                    # The cascade fed the sorted buffer directly (entries
                    # behind _wtime inside the slot); serve those first.
                    return True
                # Drain the next occupied level-0 slot in this window.
                if counts[0]:
                    ring = rings[0]
                    start = (wtime >> _SLOT_SHIFT) & _RING_MASK
                    found = -1
                    for index in range(start, 256):
                        if ring[index]:
                            found = index
                            break
                    if found >= 0:
                        window = (wtime >> 18) << 18
                        slot_start = window + (found << _SLOT_SHIFT)
                        slot = ring[found]
                        ring[found] = []
                        counts[0] -= len(slot)
                        if self._drain_slot0(slot, slot_start):
                            return True
                        continue  # slot held only dead/stray entries
                    # Entries exist but aliased into the *next* level-0
                    # window: advance exactly one window (they may be
                    # earlier than anything stored at higher levels, so
                    # no bigger jump is safe).
                    up = _SLOT_SHIFT + _RING_BITS
                    self._wtime = ((wtime >> up) + 1) << up
                    continue
                # Level 0 is empty: jump to the next occupied slot at the
                # lowest populated level (its current slot was cascaded,
                # so anything found starts strictly ahead), or — if the
                # rest of that ring window is empty too — to the next
                # level-(L+1) slot boundary, and rescan.
                for level in range(1, _LEVELS):
                    if not counts[level]:
                        continue
                    shift = _SHIFTS[level]
                    ring = rings[level]
                    start = (wtime >> shift) & _RING_MASK
                    found = -1
                    for index in range(start, 256):
                        if ring[index]:
                            found = index
                            break
                    up = shift + _RING_BITS
                    if found < 0:
                        self._wtime = ((wtime >> up) + 1) << up
                    else:
                        window = (wtime >> up) << up
                        self._wtime = window + (found << shift)
                    break
                continue
            # Rings are empty; only the overflow list may hold entries.
            overflow = self._overflow
            if not overflow:
                return False
            live: List[Key] = []
            for key in overflow:
                if key[2].cancelled:
                    self._size -= 1
                    self._dead -= 1
                    free.append(key[2])
                else:
                    live.append(key)
            self._overflow = []
            if not live:
                return False
            t_min = -max(live)[0]  # largest key == smallest time
            if t_min > self._wtime:
                self._wtime = (t_min >> _SLOT_SHIFT) << _SLOT_SHIFT
            for key in live:
                self._insert_key(key)
            if self._due:
                return True

    def _drain_slot0(self, slot: List[Key], slot_start: int) -> bool:
        """Sort one level-0 slot into the due buffer; True if due non-empty."""
        end = slot_start + (1 << _SLOT_SHIFT)
        # Comprehension passes instead of one interpreted loop: churn
        # slots are mostly dead entries, and this filter is the wheel's
        # hottest non-engine path.
        live = [key for key in slot if not key[2].cancelled]
        ndead = len(slot) - len(live)
        if ndead:
            self._size -= ndead
            self._dead -= ndead
            self._free.extend(
                [key[2] for key in slot if key[2].cancelled]
            )
        self._wtime = end
        if live:
            live.sort()
            if -live[0][0] >= end:
                # Defensive: entries aliased from a future wrap of this
                # ring.  Negated keys sort them to the front; peel them
                # off and re-place now that _wtime has advanced.
                idx = 1
                while idx < len(live) and -live[idx][0] >= end:
                    idx += 1
                stray = live[:idx]
                del live[:idx]
                for key in stray:
                    self._insert_key(key)
            due = self._due
            if due:
                due.extend(live)
                due.sort()
            else:
                self._due = due = live
            return bool(due)
        return bool(self._due)

    # ------------------------------------------------------------------
    def compact(self) -> None:
        free = self._free
        total = 0
        for level, ring in enumerate(self._rings):
            count = 0
            for slot in ring:
                if slot:
                    live = [key for key in slot if not key[2].cancelled]
                    if len(live) != len(slot):
                        for key in slot:
                            if key[2].cancelled:
                                free.append(key[2])
                        slot[:] = live
                    count += len(live)
            self._counts[level] = count
            total += count
        for store_name in ("_due", "_overflow"):
            store = getattr(self, store_name)
            live = [key for key in store if not key[2].cancelled]
            if len(live) != len(store):
                for key in store:
                    if key[2].cancelled:
                        free.append(key[2])
                store[:] = live
            total += len(live)
        self._size = total
        self._dead = 0

    def drain_live(self) -> Iterator[Entry]:
        stores: List[List[Key]] = [self._due, self._overflow]
        for ring in self._rings:
            stores.extend(slot for slot in ring if slot)
        self._rings = tuple(
            [[] for _ in range(1 << _RING_BITS)] for _ in range(_LEVELS)
        )
        self._counts = [0] * _LEVELS
        self._due = []
        self._overflow = []
        self._size = 0
        self._dead = 0
        free = self._free
        for store in stores:
            for key in store:
                if key[2].cancelled:
                    free.append(key[2])
                else:
                    yield (-key[0], -key[1], key[2])
