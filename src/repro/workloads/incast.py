"""Barrier-synchronised incast workload (paper sections 6.1.2 and 6.2.1).

A client requests a data block from every server; all servers respond
simultaneously; the client only requests the next round once *every* block
of the current round has fully arrived.  This is the classic incast pattern
(and the paper's Figs. 12 and 15).

Connections are persistent across rounds (as in the original incast
studies): each server keeps one established flow to the client and queues
``block_bytes`` when a request arrives.  The request itself is modelled as
a one-way delay (``request_delay_ns``, defaulting to the topology's one-hop
request latency) rather than as reverse-direction segments — the paper
itself notes the request costs one round, and that is exactly what the
delay reproduces.

Round-completion detection watches each sender's cumulative acked bytes, so
a round ends only when the client has acknowledged every block — matching
"the receiver could not request the next round data blocks until it
receives all the current transmitted data blocks".
"""

from __future__ import annotations

from typing import List, Optional

from ..net.host import Host
from ..sim.units import microseconds
from ..transport.base import Sender
from ..transport.registry import open_flow


class IncastCoordinator:
    """Runs ``rounds`` barrier-synchronised block transfers."""

    def __init__(
        self,
        client: Host,
        servers: List[Host],
        protocol: str,
        block_bytes: int = 256_000,
        rounds: int = 10,
        request_delay_ns: int = microseconds(50),
        min_rto_ns: Optional[int] = None,
        start_ns: int = 0,
        tenant: Optional[str] = None,
    ):
        if not servers:
            raise ValueError("incast needs at least one server")
        if block_bytes <= 0 or rounds <= 0:
            raise ValueError("block_bytes and rounds must be positive")
        self.sim = client.sim
        self.client = client
        self.block_bytes = block_bytes
        self.total_rounds = rounds
        self.request_delay_ns = request_delay_ns
        self.rounds_completed = 0
        self.round_start_ns: Optional[int] = None
        self.round_durations_ns: List[int] = []
        self.finished = False
        self._expected_acked = 0
        kwargs = {} if min_rto_ns is None else {"min_rto_ns": min_rto_ns}
        # size_bytes=0 keeps flows open; blocks are queued per round.
        self.senders: List[Sender] = [
            open_flow(
                server, client, protocol, size_bytes=0, tenant=tenant, **kwargs
            )
            for server in servers
        ]
        for sender in self.senders:
            sender.fin_on_empty = False
        self.sim.schedule_at(max(start_ns, self.sim.now), self._issue_round)

    # ------------------------------------------------------------------
    @property
    def goodput_bps(self) -> float:
        """Application goodput over all completed rounds (client side)."""
        if not self.round_durations_ns:
            return 0.0
        total_bytes = self.rounds_completed * self.block_bytes * len(self.senders)
        elapsed = self._last_finish_ns - self._first_start_ns
        return total_bytes * 8 * 1e9 / elapsed if elapsed > 0 else 0.0

    @property
    def total_timeouts(self) -> int:
        """RTO events across all servers so far."""
        return sum(sender.stats.timeouts for sender in self.senders)

    @property
    def max_timeouts_per_block(self) -> float:
        """The paper's Fig. 15b metric: worst per-flow timeouts per round."""
        if self.rounds_completed == 0:
            return 0.0
        return max(
            sender.stats.timeouts / self.rounds_completed
            for sender in self.senders
        )

    # ------------------------------------------------------------------
    def _issue_round(self) -> None:
        if self.rounds_completed >= self.total_rounds:
            self._finish()
            return
        if self.rounds_completed == 0:
            self._first_start_ns = self.sim.now
        self.round_start_ns = self.sim.now
        self._expected_acked += self.block_bytes
        # The request reaches every server after the request latency.
        self.sim.schedule(self.request_delay_ns, self._deliver_requests)
        self._watch_completion()

    def _deliver_requests(self) -> None:
        for sender in self.senders:
            sender.queue_bytes(self.block_bytes)

    def _watch_completion(self) -> None:
        if all(
            sender.snd_una >= self._expected_acked for sender in self.senders
        ):
            assert self.round_start_ns is not None
            self.round_durations_ns.append(self.sim.now - self.round_start_ns)
            self.rounds_completed += 1
            self._last_finish_ns = self.sim.now
            self._issue_round()
            return
        # Poll at a fine grain; event-driven completion would require the
        # coordinator to hook every sender's ACK path, and 10 us polling is
        # far below any per-round timescale of interest.
        self.sim.schedule(microseconds(10), self._watch_completion)

    def _finish(self) -> None:
        self.finished = True
        for sender in self.senders:
            sender.finish()
