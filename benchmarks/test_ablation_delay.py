"""Ablation — the switch delay function and the window-acquisition phase.

The paper attributes TFC's incast survival to two mechanisms (section
4.6): the acquisition probe (new flows wait for a real allocation) and
the sub-MSS ACK delay function at switches.  This ablation removes the
sender-side idle re-acquisition (an analogous resume-time protection) and
shows the difference under a synchronised incast.
"""

from conftest import run_once

from repro.core.sender import TfcSender
from repro.experiments import run_incast_point


def run_with_and_without_reacquisition():
    results = {}
    results["with re-acquisition"] = run_incast_point(
        "tfc", 50, block_bytes=256_000, rounds=3,
        rate_bps=10_000_000_000, buffer_bytes=512_000,
    )
    saved = (TfcSender.idle_reacquire_ns, TfcSender.resume_burst_limit)
    try:
        TfcSender.idle_reacquire_ns = 1 << 60   # never re-acquire
        TfcSender.resume_burst_limit = 1 << 60  # never clamp
        results["without re-acquisition"] = run_incast_point(
            "tfc", 50, block_bytes=256_000, rounds=3,
            rate_bps=10_000_000_000, buffer_bytes=512_000,
        )
    finally:
        TfcSender.idle_reacquire_ns, TfcSender.resume_burst_limit = saved
    return results


def test_ablation_window_reacquisition(benchmark, report):
    results = run_once(benchmark, run_with_and_without_reacquisition)

    report(
        "Ablation: resume-time window re-acquisition (50-way incast, 10G)",
        ["variant", "goodput (Gbps)", "drops", "max queue (KB)", "TO/block"],
        [
            [
                name,
                f"{r.goodput_bps / 1e9:.2f}",
                r.drops,
                f"{r.queue_max_bytes / 1000:.0f}",
                f"{r.max_timeouts_per_block:.2f}",
            ]
            for name, r in results.items()
        ],
    )

    protected = results["with re-acquisition"]
    unprotected = results["without re-acquisition"]
    assert protected.drops == 0
    assert protected.max_timeouts_per_block == 0
    # Without it, resumed rounds burst held windows into the buffer.
    assert unprotected.queue_max_bytes >= protected.queue_max_bytes
