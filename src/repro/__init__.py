"""repro — a reproduction of "TFC: Token Flow Control in Data Center
Networks" (EuroSys 2016).

The package bundles a packet-level discrete-event network simulator
(:mod:`repro.sim`, :mod:`repro.net`), the TCP NewReno and DCTCP baselines
(:mod:`repro.transport`), the TFC protocol itself (:mod:`repro.core`),
workload generators (:mod:`repro.workloads`), measurement utilities
(:mod:`repro.metrics`), deterministic fault injection with runtime
invariant monitoring (:mod:`repro.faults`), one driver per paper
figure plus chaos scenarios (:mod:`repro.experiments`), a unified
run configuration (:mod:`repro.config`) and the telemetry subsystem
(:mod:`repro.obs` — metric registry, per-slot timelines, flight
recorder).

Quickstart::

    from repro.experiments.common import build_topology
    from repro.net import dumbbell
    from repro.transport import open_flow
    from repro.sim.units import seconds

    topo = build_topology(dumbbell, "tfc", buffer_bytes=256_000, n_senders=4)
    flows = [open_flow(h, topo.hosts[-1], "tfc") for h in topo.hosts[:4]]
    topo.network.run_for(seconds(1))

Every transport (tfc, dctcp, tcp, pfc, bfc, tbtcp, tracks, fairq) is a
:class:`~repro.transport.registry.Protocol` entry owning its queue
discipline and switch-side installer; ``repro.transport.
register_protocol`` adds new ones at runtime and scenarios/experiments
pick them up by name.

Observability quickstart::

    from repro.config import SimConfig
    from repro.net import Network

    net = Network(config=SimConfig(seed=1, telemetry="full"))
    ...  # build topology, open flows, run
    net.telemetry.export("out/", "my_run")
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
