"""Transport protocols: shared reliability framework plus the registry.

Protocol behaviour is owned by :class:`~repro.transport.registry.
Protocol` entries — each spec carries its sender/receiver classes, a
typed parameter dataclass, a queue factory and a network installer.
``register_protocol`` adds new transports at runtime; nothing outside
the registry branches on protocol names.
"""

from .base import FlowState, FlowStats, Receiver, RtoEstimator, Sender
from .bfc import BfcReceiver, BfcSender
from .dctcp import DctcpReceiver, DctcpSender
from .fairq import FairqReceiver, FairqSender
from .newreno import NewRenoReceiver, NewRenoSender
from .registry import (
    DEFAULT_DCTCP_K_BYTES,
    PROTOCOLS,
    EcnParams,
    Protocol,
    configure_network,
    get_protocol,
    open_flow,
    queue_factory_for,
    register_protocol,
    registered_protocols,
    unregister_protocol,
)
from .tbtcp import TbtcpParams, TbtcpReceiver, TbtcpSender
from .tracks import TracksParams, TracksReceiver, TracksSender

__all__ = [
    "FlowState",
    "FlowStats",
    "Receiver",
    "RtoEstimator",
    "Sender",
    "BfcReceiver",
    "BfcSender",
    "DctcpReceiver",
    "DctcpSender",
    "FairqReceiver",
    "FairqSender",
    "NewRenoReceiver",
    "NewRenoSender",
    "TbtcpParams",
    "TbtcpReceiver",
    "TbtcpSender",
    "TracksParams",
    "TracksReceiver",
    "TracksSender",
    "DEFAULT_DCTCP_K_BYTES",
    "PROTOCOLS",
    "EcnParams",
    "Protocol",
    "configure_network",
    "get_protocol",
    "open_flow",
    "queue_factory_for",
    "register_protocol",
    "registered_protocols",
    "unregister_protocol",
]
