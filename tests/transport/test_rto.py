"""Unit tests for the RFC 6298 RTO estimator."""

from hypothesis import given, strategies as st

from repro.sim.units import MILLISECOND, SECOND, microseconds
from repro.transport.base import RtoEstimator


def test_first_sample_initialises_srtt():
    rto = RtoEstimator(min_rto_ns=MILLISECOND)
    rto.sample(microseconds(100))
    assert rto.srtt == microseconds(100)
    assert rto.rttvar == microseconds(50)


def test_rto_respects_minimum():
    rto = RtoEstimator(min_rto_ns=10 * MILLISECOND)
    rto.sample(microseconds(100))  # srtt + 4*var << min_rto
    assert rto.current_rto_ns == 10 * MILLISECOND


def test_rto_tracks_large_rtts():
    rto = RtoEstimator(min_rto_ns=MILLISECOND)
    for _ in range(20):
        rto.sample(50 * MILLISECOND)
    assert rto.current_rto_ns >= 50 * MILLISECOND


def test_backoff_doubles_and_sample_resets():
    rto = RtoEstimator(min_rto_ns=10 * MILLISECOND)
    rto.sample(microseconds(100))
    base = rto.current_rto_ns
    rto.backoff()
    assert rto.current_rto_ns == 2 * base
    rto.backoff()
    assert rto.current_rto_ns == 4 * base
    rto.sample(microseconds(100))
    assert rto.current_rto_ns == base


def test_backoff_capped_at_max():
    rto = RtoEstimator(min_rto_ns=SECOND, max_rto_ns=4 * SECOND)
    for _ in range(10):
        rto.backoff()
    assert rto.current_rto_ns == 4 * SECOND


def test_smoothing_converges():
    rto = RtoEstimator(min_rto_ns=1)
    for _ in range(100):
        rto.sample(microseconds(200))
    assert abs(rto.srtt - microseconds(200)) < microseconds(1)
    assert rto.rttvar < microseconds(1)


@given(st.lists(st.integers(min_value=1_000, max_value=100 * MILLISECOND), min_size=1, max_size=50))
def test_property_rto_always_within_bounds(samples):
    rto = RtoEstimator(min_rto_ns=MILLISECOND, max_rto_ns=SECOND)
    for value in samples:
        rto.sample(value)
        assert MILLISECOND <= rto.current_rto_ns <= SECOND
        assert rto.srtt is not None
        assert min(samples) / 2 <= rto.srtt <= max(samples) * 2
