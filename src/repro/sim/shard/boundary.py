"""Boundary-link capture: turn cross-shard delivery into messages.

Every shard builds the *full* topology (identical node ids and RNG
streams everywhere — construction is cheap next to event processing),
then :func:`attach_shard` rewires each link leaving an owned node for a
foreign one: the link's ``dst_node`` becomes a :class:`BoundaryCapture`
proxy and its ``delay_ns`` drops to zero.  Both the port TX paths and
``Link.carry`` (PFC pause frames) deliver through
``schedule(link.delay_ns, link.dst_node.receive, packet, index)``, so
the capture fires at *send completion* — exactly when the serial run
would have committed the delivery — and records the frame with its true
arrival time ``now + real_delay``.

The proxy delegates every other attribute to the real destination node
(which exists locally, since the full topology is built), so runtime
readers like the PFC layer's ``via_port.peer_node.name`` /
``peer_tx_port`` keep working across the boundary.  Injection on the
destination shard is simply ``schedule_at(arrival, node.receive,
packet, dst_port_index)`` — one hop was already counted at capture, and
``receive`` is the same entry point a local link delivery uses, so PFC
pause frames still bypass the data queues.
"""

from __future__ import annotations

from typing import List, Tuple

from .partition import ShardError, ShardPlan

#: A captured cross-shard frame: (arrival_ns, dst_shard, dst_node_id,
#: dst_port_index, packet).  Arrival is absolute simulation time.
Message = Tuple[int, int, int, int, object]


class BoundaryCapture:
    """Stand-in for a foreign ``link.dst_node``: records, never delivers."""

    __slots__ = ("_sim", "_target", "_dst_shard", "_delay_ns", "_outbox")

    def __init__(self, sim, target, dst_shard: int, delay_ns: int, outbox):
        self._sim = sim
        self._target = target
        self._dst_shard = dst_shard
        self._delay_ns = delay_ns
        self._outbox = outbox

    def receive(self, packet, in_port_index: int) -> None:
        # In-flight packets never carry a live ingress charge (the PFC
        # fabric nulls it at dequeue), but sanitize anyway: the reference
        # must not cross the process boundary.
        if packet.pfc_ingress is not None:
            packet.pfc_ingress = None
        self._outbox.append(
            (
                self._sim.now + self._delay_ns,
                self._dst_shard,
                self._target.node_id,
                in_port_index,
                packet,
            )
        )

    def __getattr__(self, name):
        # Everything except receive() behaves like the real neighbour.
        return getattr(self._target, name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BoundaryCapture -> {self._target!r}>"


def attach_shard(topology, plan: ShardPlan, shard_id: int, outbox: List[Message]) -> int:
    """Proxy every owned->foreign link on ``topology``; return the count.

    Also validates the plan against the built fabric: every node must be
    covered, and every boundary link's propagation delay must be at
    least the plan's lookahead (the conservative-sync safety condition).
    """
    net = topology.network
    sim = net.sim
    wrapped = 0
    for node in net.nodes:
        if plan.owner_of(node.name) != shard_id:
            continue
        for port in node.ports:
            link = port.link
            target = link.dst_node
            dst_shard = plan.owner_of(target.name)
            if dst_shard == shard_id:
                continue
            if link.delay_ns < plan.lookahead_ns:
                raise ShardError(
                    f"boundary link {node.name}->{target.name} has delay "
                    f"{link.delay_ns} ns < lookahead {plan.lookahead_ns} ns"
                )
            link.dst_node = BoundaryCapture(
                sim, target, dst_shard, link.delay_ns, outbox
            )
            link.delay_ns = 0
            wrapped += 1
    if wrapped == 0:
        # Every shard of a fat tree borders the rest of the fabric (pods
        # via their aggregation uplinks, the core via every downlink).
        raise ShardError(
            f"shard {shard_id} owns no boundary links — partition and "
            "topology disagree"
        )
    return wrapped
