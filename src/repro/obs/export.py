"""Structured exporters: registry -> JSONL, slot timelines -> CSV.

Output is deliberately boring: newline-delimited JSON with sorted keys
and fixed-column CSV, both in deterministic row order and free of
wall-clock timestamps — two identical runs produce byte-identical files
(the telemetry determinism tests diff them directly).
"""

from __future__ import annotations

import csv
import json
import os
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .registry import MetricRegistry
    from .slots import SlotTimelineRecorder

from .slots import SLOT_FIELDS


def _ensure_parent(path: str) -> None:
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)


def write_metrics_jsonl(registry: "MetricRegistry", path: str) -> str:
    """One JSON object per instrument, sorted by metric name."""
    _ensure_parent(path)
    with open(path, "w") as fh:
        for row in registry.rows():
            fh.write(json.dumps(row, sort_keys=True))
            fh.write("\n")
    return path


def write_slots_csv(recorder: "SlotTimelineRecorder", path: str) -> str:
    """All agents' slot timelines as one flat CSV.

    Columns: ``agent`` plus :data:`~repro.obs.slots.SLOT_FIELDS`.  Rows
    are grouped by agent label (sorted) and ordered by slot within each
    agent — deterministic for a deterministic run.
    """
    _ensure_parent(path)
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(("agent",) + SLOT_FIELDS)
        for label in recorder.labels():
            for row in recorder.timelines[label]:
                writer.writerow((label,) + row)
    return path
