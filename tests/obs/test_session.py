"""Telemetry sessions: modes, snapshot, export, install surfaces."""

import csv
import json

import pytest

from repro.experiments.common import build_topology
from repro.net.topology import dumbbell
from repro.obs import (
    Telemetry,
    drain_pending,
    install,
    maybe_install,
)
from repro.sim.units import seconds
from repro.transport.registry import open_flow


@pytest.fixture(autouse=True)
def _clean_pending(monkeypatch):
    # Sessions here are installed explicitly; neutralise any ambient
    # REPRO_TELEMETRY (the telemetry CI shard) except where a test sets it.
    monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
    monkeypatch.delenv("REPRO_TELEMETRY_DIR", raising=False)
    drain_pending()
    yield
    drain_pending()


def _ran_dumbbell(n=2, seed=1):
    topo = build_topology(
        dumbbell, "tfc", buffer_bytes=256_000, n_senders=n, seed=seed
    )
    receiver = topo.host(n)
    for i in range(n):
        open_flow(topo.host(i), receiver, "tfc")
    topo.network.run_for(seconds(0.05))
    return topo


def test_mode_selects_recorders():
    topo = _ran_dumbbell()
    counters = Telemetry(topo.network, "counters")
    assert counters.slots is None and counters.flight is None
    slots = Telemetry(topo.network, "slots")
    assert slots.slots is not None and slots.flight is None
    full = Telemetry(topo.network, "full")
    assert full.slots is not None and full.flight is not None
    for session in (counters, slots, full):
        session.detach()
    with pytest.raises(ValueError, match="telemetry mode"):
        Telemetry(topo.network, "off")
    with pytest.raises(ValueError, match="telemetry mode"):
        Telemetry(topo.network, "verbose")


def test_snapshot_mirrors_tracer_and_ports():
    topo = _ran_dumbbell()
    net = topo.network
    session = Telemetry(net, "counters")
    registry = session.snapshot()
    assert registry.get("sim.now_ns").value == net.sim.now
    assert (
        registry.get("sim.events_processed").value == net.sim.events_processed
    )
    for topic, count in net.tracer.counters.items():
        assert registry.get(topic).value == count
    assert registry.get("net.total_drops").value == net.total_drops()
    # every port appears with its gauge set
    port = net.switches[0].ports[0]
    prefix = f"port.{port.node.name}.{port.index}"
    assert registry.get(f"{prefix}.tx_bytes").value == port.tx_bytes
    received = registry.get("transport.bytes_received").value
    assert received > 0
    session.detach()


def test_export_writes_labelled_files(tmp_path):
    topo = _ran_dumbbell()
    session = install(topo.network, "full")
    topo.network.run_for(seconds(0.01))
    paths = session.export(str(tmp_path), "unit")
    names = sorted(p.split("/")[-1] for p in paths)
    assert names == [
        "unit.flight.jsonl",
        "unit.metrics.jsonl",
        "unit.slots.csv",
    ]
    metric_rows = [
        json.loads(line)
        for line in (tmp_path / "unit.metrics.jsonl").read_text().splitlines()
    ]
    assert [r["name"] for r in metric_rows] == sorted(
        r["name"] for r in metric_rows
    )
    with open(tmp_path / "unit.slots.csv") as fh:
        header = next(csv.reader(fh))
    assert header[0] == "agent" and "tokens" in header


def test_counters_mode_exports_metrics_only(tmp_path):
    topo = _ran_dumbbell()
    session = Telemetry(topo.network, "counters")
    paths = session.export(str(tmp_path), "c")
    assert [p.split("/")[-1] for p in paths] == ["c.metrics.jsonl"]


def test_install_sets_network_handle_and_pending_queue():
    topo = _ran_dumbbell()
    session = install(topo.network, "counters")
    assert topo.network.telemetry is session
    assert drain_pending() == [session]
    assert drain_pending() == []


def test_maybe_install_reads_environment(monkeypatch):
    monkeypatch.setenv("REPRO_TELEMETRY", "slots")
    topo = build_topology(
        dumbbell, "tfc", buffer_bytes=256_000, n_senders=2, seed=1
    )
    session = topo.network.telemetry
    assert session is not None and session.mode == "slots"
    # already-installed networks are left alone
    assert maybe_install(topo.network) is session


def test_maybe_install_off_is_noop(monkeypatch):
    monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
    topo = build_topology(
        dumbbell, "tfc", buffer_bytes=256_000, n_senders=2, seed=1
    )
    assert topo.network.telemetry is None
    assert drain_pending() == []


def test_invalid_env_mode_raises(monkeypatch):
    monkeypatch.setenv("REPRO_TELEMETRY", "everything")
    with pytest.raises(ValueError, match="REPRO_TELEMETRY"):
        build_topology(
            dumbbell, "tfc", buffer_bytes=256_000, n_senders=2, seed=1
        )


def test_pending_queue_is_bounded():
    for seed in range(10):
        topo = build_topology(
            dumbbell, "tfc", buffer_bytes=256_000, n_senders=2, seed=seed
        )
        install(topo.network, "counters")
    assert len(drain_pending()) == 8


def test_exports_are_deterministic(tmp_path):
    def run(directory):
        drain_pending()
        topo = _ran_dumbbell()
        session = install(topo.network, "full")
        topo.network.run_for(seconds(0.01))
        return [open(p, "rb").read() for p in session.export(directory, "d")]

    first = run(str(tmp_path / "a"))
    second = run(str(tmp_path / "b"))
    assert first == second
