"""Unit tests for restartable timers."""

from repro.sim.engine import Simulator
from repro.sim.timers import Timer


def test_timer_fires_once():
    sim = Simulator()
    log = []
    timer = Timer(sim, lambda: log.append(sim.now))
    timer.start(100)
    sim.run()
    assert log == [100]
    assert not timer.running


def test_timer_restart_replaces_deadline():
    sim = Simulator()
    log = []
    timer = Timer(sim, lambda: log.append(sim.now))
    timer.start(100)
    sim.schedule(50, timer.start, 100)  # push back to 150
    sim.run()
    assert log == [150]


def test_timer_stop():
    sim = Simulator()
    log = []
    timer = Timer(sim, log.append, name="t")
    timer.start(100, "fired")
    sim.schedule(10, timer.stop)
    sim.run()
    assert log == []


def test_timer_stop_idempotent():
    sim = Simulator()
    timer = Timer(sim, lambda: None)
    timer.stop()
    timer.stop()
    assert not timer.running


def test_start_if_idle_does_not_replace():
    sim = Simulator()
    log = []
    timer = Timer(sim, lambda: log.append(sim.now))
    timer.start(100)
    timer.start_if_idle(10)  # ignored: already armed
    sim.run()
    assert log == [100]


def test_start_if_idle_arms_when_idle():
    sim = Simulator()
    log = []
    timer = Timer(sim, lambda: log.append(sim.now))
    timer.start_if_idle(10)
    sim.run()
    assert log == [10]


def test_timer_forwards_arguments():
    sim = Simulator()
    log = []
    timer = Timer(sim, lambda a, b: log.append((a, b)))
    timer.start(5, "x", 2)
    sim.run()
    assert log == [("x", 2)]


def test_timer_can_rearm_from_callback():
    sim = Simulator()
    log = []
    timer = Timer(sim, lambda: None)

    def tick():
        log.append(sim.now)
        if len(log) < 3:
            timer.start(10)

    timer = Timer(sim, tick)
    timer.start(10)
    sim.run()
    assert log == [10, 20, 30]


def test_expiry_property():
    sim = Simulator()
    timer = Timer(sim, lambda: None)
    assert timer.expiry is None
    timer.start(100)
    assert timer.expiry == 100
    timer.stop()
    assert timer.expiry is None
