"""Sharded execution is bit-identical to the serial reference.

The contract: partitioning a fat tree across shards with the
conservative-lookahead coordinator changes *nothing* about the
simulation's results — every transport counter, receiver state digest
and per-node drop count matches the single-Simulator run exactly.  No
tolerance, no statistics: dict equality.  (Cross-shard arrivals are
injected strictly inside the destination's future — arrival >= horizon
+ 1 by the lookahead bound — and ties are broken by a deterministic
(arrival, src_shard, capture_seq) sort, so there is no tie-order
wiggle room to paper over.)
"""

import pytest

from repro.config import env as config_env
from repro.sim.shard import (
    ShardError,
    ShardSpec,
    plan_fat_tree,
    run_serial_reference,
    run_sharded,
)
from repro.sim.shard.workload import build_pod_traffic, collect_pod_traffic

END_NS = 1_000_000  # 1 ms simulated


def make_spec(pod_shards=2, k=4, protocol="tfc", seed=0, end_ns=END_NS,
              lookahead_ns=None):
    return ShardSpec(
        plan=plan_fat_tree(
            k=k, pod_shards=pod_shards, lookahead_ns=lookahead_ns
        ),
        build=build_pod_traffic,
        collect=collect_pod_traffic,
        end_ns=end_ns,
        root_seed=seed,
        build_kwargs={"k": k, "protocol": protocol},
    )


# ----------------------------------------------------------------------
# The pinned equivalence cross-check (>= 2 scheduler backends)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("scheduler", ("heap", "calendar", "adaptive"))
def test_sharded_bit_identical_to_serial(scheduler):
    with config_env(scheduler=scheduler):
        spec = make_spec(pod_shards=2)
        serial = run_serial_reference(spec)
        sharded = run_sharded(spec, mode="inline")
    assert sharded.merged() == serial.metrics
    # The run genuinely crossed shard boundaries and epoch barriers.
    assert sharded.shards == 3
    assert sharded.epochs > 1
    assert sharded.messages > 0


@pytest.mark.parametrize("protocol", ("tcp", "dctcp"))
def test_sharded_bit_identical_other_transports(protocol):
    spec = make_spec(pod_shards=2, protocol=protocol)
    serial = run_serial_reference(spec)
    sharded = run_sharded(spec, mode="inline")
    assert sharded.merged() == serial.metrics


@pytest.mark.parametrize("pod_shards", (1, 4))
def test_results_invariant_across_shard_counts(pod_shards):
    """Any shard count produces the same merged dict (seed invariance)."""
    reference = run_sharded(make_spec(pod_shards=2), mode="inline")
    other = run_sharded(make_spec(pod_shards=pod_shards), mode="inline")
    assert other.merged() == reference.merged()
    assert other.shards == pod_shards + 1


def test_process_mode_matches_inline():
    """Real worker processes produce the identical merged dict."""
    spec = make_spec(pod_shards=2)
    inline = run_sharded(spec, mode="inline")
    try:
        process = run_sharded(spec, mode="process")
    except (OSError, ImportError, PermissionError) as exc:
        pytest.skip(f"multiprocessing unavailable here: {exc!r}")
    assert process.mode == "process"
    assert inline.mode == "inline"
    assert process.merged() == inline.merged()
    # Coordination is deterministic, not just the physics.
    assert process.epochs == inline.epochs
    assert process.messages == inline.messages


def test_auto_mode_runs_and_matches_serial():
    spec = make_spec(pod_shards=2)
    result = run_sharded(spec)  # mode="auto"
    assert result.mode in ("process", "inline")
    assert result.merged() == run_serial_reference(spec).metrics


# ----------------------------------------------------------------------
# Guard rails
# ----------------------------------------------------------------------
def test_unknown_mode_rejected():
    with pytest.raises(ValueError, match="mode"):
        run_sharded(make_spec(), mode="threads")


def test_lookahead_exceeding_link_delay_rejected():
    """A lookahead above the real boundary delay would break causality —
    attach refuses to arm it rather than silently desynchronising."""
    spec = make_spec(lookahead_ns=10_000_000)
    with pytest.raises(ShardError, match="lookahead"):
        run_sharded(spec, mode="inline")


def test_merged_metrics_partition_cleanly():
    """Per-shard metric dicts are disjoint and union to the serial set."""
    spec = make_spec(pod_shards=2)
    serial = run_serial_reference(spec)
    sharded = run_sharded(spec, mode="inline")
    seen = set()
    for payload in sharded.per_shard:
        keys = set(payload)
        assert seen.isdisjoint(keys)
        seen |= keys
    assert seen == set(serial.metrics)
