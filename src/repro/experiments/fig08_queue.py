"""Figs. 8-10 — queue length, goodput/fairness, and convergence.

One scenario serves all three figures, exactly as in the paper: hosts H1
and H2 each start two long-lived flows to H3, one every 3 seconds (flow i
starts at ``i x interval``).  The paper then reports:

* Fig. 8 — bottleneck queue length over time (TFC near zero, DCTCP ~30 KB
  around its marking threshold, TCP pinned at the 256 KB buffer);
* Fig. 9 — per-flow goodput sampled every 20 ms (fairness);
* Fig. 10 — zoom on flow 3's start: TFC converges in about one round,
  DCTCP in tens of milliseconds, TCP much later.

The default stagger interval is scaled down from the paper's 3 s (nothing
changes after a few hundred ms of steady state; the scale-down is recorded
in EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..metrics.samplers import QueueSampler, RateSampler, Series, convergence_time_ns
from ..metrics.stats import jain_fairness
from ..net.topology import testbed
from ..sim.units import microseconds, milliseconds, seconds
from ..transport.registry import open_flow
from .common import ExperimentResult, build_topology


@dataclass
class StaggeredFlowsResult:
    """Everything Figs. 8, 9 and 10 read off the shared scenario."""

    protocol: str
    n_flows: int
    interval_ns: int
    queue_series: Series = field(default_factory=list)
    goodput_series: Dict[int, Series] = field(default_factory=dict)
    drops: int = 0
    timeouts: int = 0

    # ------------------------------------------------------------------
    # Fig. 8 views
    # ------------------------------------------------------------------
    def queue_mean_bytes(self, after_ns: int = 0) -> float:
        values = [v for t, v in self.queue_series if t >= after_ns]
        return sum(values) / len(values) if values else 0.0

    def queue_max_bytes(self) -> float:
        return max((v for _, v in self.queue_series), default=0.0)

    # ------------------------------------------------------------------
    # Fig. 9 views
    # ------------------------------------------------------------------
    def steady_state_fairness(self) -> float:
        """Jain index across flows once all are active."""
        start = (self.n_flows - 1) * self.interval_ns
        rates = []
        for series in self.goodput_series.values():
            values = [v for t, v in series if t >= start + self.interval_ns // 2]
            rates.append(sum(values) / len(values) if values else 0.0)
        return jain_fairness(rates)

    def aggregate_goodput_bps(self) -> float:
        """Mean aggregate goodput once all flows are active."""
        start = (self.n_flows - 1) * self.interval_ns + self.interval_ns // 2
        total = 0.0
        for series in self.goodput_series.values():
            values = [v for t, v in series if t >= start]
            total += sum(values) / len(values) if values else 0.0
        return total

    # ------------------------------------------------------------------
    # Fig. 10 view
    # ------------------------------------------------------------------
    def convergence_ns(
        self,
        flow_index: int,
        link_rate_bps: float,
        tolerance: float = 0.25,
    ) -> Optional[int]:
        """Time from flow start until it holds its fair share."""
        series = self.goodput_series[flow_index]
        start_ns = flow_index * self.interval_ns
        active = flow_index + 1  # flows running once this one starts
        target = link_rate_bps * (1460 / 1518) / active
        reached = convergence_time_ns(
            [(t, v) for t, v in series if t >= start_ns], target, tolerance
        )
        return None if reached is None else reached - start_ns


def run_staggered_flows(
    protocol: str,
    n_flows: int = 4,
    interval_s: float = 0.25,
    tail_s: float = 0.5,
    goodput_sample_ms: float = 20.0,
    queue_sample_us: float = 100.0,
    buffer_bytes: int = 256_000,
    seed: int = 0,
) -> StaggeredFlowsResult:
    """Run the shared Figs. 8-10 scenario for one protocol."""
    topo = build_topology(testbed, protocol, buffer_bytes=buffer_bytes, seed=seed)
    net = topo.network
    h1, h2, h3 = topo.host(0), topo.host(1), topo.host(2)
    sources = [h1, h2] * ((n_flows + 1) // 2)

    interval_ns = seconds(interval_s)
    senders = [
        open_flow(sources[i], h3, protocol, start_ns=i * interval_ns)
        for i in range(n_flows)
    ]

    result = StaggeredFlowsResult(
        protocol=protocol, n_flows=n_flows, interval_ns=interval_ns
    )
    queue_sampler = QueueSampler(
        net.sim, topo.bottleneck("to_H3"), microseconds(queue_sample_us)
    )
    rate_samplers = [
        RateSampler(
            net.sim,
            (lambda s=sender: s.receiver.bytes_received),
            milliseconds(goodput_sample_ms),
            label=f"flow{i}",
        )
        for i, sender in enumerate(senders)
    ]

    net.run_for((n_flows - 1) * interval_ns + seconds(tail_s))

    result.queue_series = queue_sampler.series
    result.goodput_series = {
        i: sampler.series for i, sampler in enumerate(rate_samplers)
    }
    result.drops = net.total_drops()
    result.timeouts = sum(sender.stats.timeouts for sender in senders)
    return result


def run_staggered_cell(
    protocol: str,
    n_flows: int = 4,
    interval_s: float = 0.25,
    tail_s: float = 0.5,
    seed: int = 0,
) -> "ExperimentResult":
    """Picklable cell adapter for the parallel runner."""
    res = run_staggered_flows(
        protocol,
        n_flows=n_flows,
        interval_s=interval_s,
        tail_s=tail_s,
        seed=seed,
    )
    return ExperimentResult(
        name=f"fig08:{protocol}:n{n_flows}:seed{seed}",
        protocol=protocol,
        scalars={
            "queue_mean_bytes": res.queue_mean_bytes(),
            "queue_max_bytes": res.queue_max_bytes(),
            "fairness": res.steady_state_fairness(),
            "aggregate_goodput_bps": res.aggregate_goodput_bps(),
            "drops": float(res.drops),
            "timeouts": float(res.timeouts),
        },
        series={"queue_series": list(res.queue_series)},
    )
