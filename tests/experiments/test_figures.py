"""Smoke tests for every per-figure experiment driver, at miniature scale.

These assert the *shape* each paper figure reports, not absolute numbers:
they are the fast versions of the full benchmarks in ``benchmarks/``.
"""

import pytest

from repro.experiments import (
    run_benchmark,
    run_collision,
    run_fig06,
    run_fig07,
    run_fig11,
    run_incast_point,
    run_multipath_benchmark,
    run_rho_point,
    run_staggered_flows,
)


@pytest.fixture(scope="module")
def staggered():
    """Shared Figs. 8-10 runs (one per protocol, reused by three tests)."""
    return {
        proto: run_staggered_flows(proto, interval_s=0.08, tail_s=0.15)
        for proto in ("tfc", "dctcp", "tcp")
    }


def test_fig06_rttb_below_reference():
    result = run_fig06(duration_s=1.0, sample_interval_s=0.2)
    assert len(result.rttb_samples_us) >= 4
    assert len(result.reference_samples_us) > 100
    # rtt_b excludes host processing jitter: strictly below the reference.
    assert 0 < result.gap_us < 60
    rttb_cdf, ref_cdf = result.cdfs()
    assert rttb_cdf and ref_cdf


def test_fig07_effective_flow_tracking():
    result = run_fig07(n1_max=4, n2=3, step_s=0.03, settle_s=0.15)
    assert len(result.samples) > 20
    # Baseline before the ramp: exactly the steady flows.
    baseline = [m for t, m, _ in result.samples if t < 0.15]
    assert baseline and abs(baseline[0] - 3) <= 1
    # The count rises during the ramp and falls back as flows go silent.
    peak = max(m for _, m, _ in result.samples)
    tail = [m for _, m, _ in result.samples][-3:]
    assert peak >= 4
    assert max(tail) <= peak


def test_fig08_queue_ordering(staggered):
    """TFC << DCTCP << TCP on queue occupancy."""
    tfc = staggered["tfc"].queue_mean_bytes(int(0.05e9))
    dctcp = staggered["dctcp"].queue_mean_bytes(int(0.05e9))
    tcp = staggered["tcp"].queue_mean_bytes(int(0.05e9))
    assert tfc < dctcp < tcp
    assert staggered["tfc"].queue_max_bytes() < 40_000
    assert staggered["tcp"].queue_max_bytes() > 200_000


def test_fig09_fairness_and_goodput(staggered):
    for proto in ("tfc", "dctcp"):
        assert staggered[proto].steady_state_fairness() > 0.95
    assert staggered["tfc"].aggregate_goodput_bps() > 0.8e9
    assert staggered["tfc"].drops == 0


def test_fig10_convergence_ordering(staggered):
    tfc = staggered["tfc"].convergence_ns(2, 1e9)
    tcp = staggered["tcp"].convergence_ns(2, 1e9)
    assert tfc is not None
    assert tcp is None or tfc <= tcp


def test_fig11_work_conserving():
    result = run_fig11(duration_s=0.4)
    assert result.s1_goodput_bps() > 0.85e9
    assert result.s2_goodput_bps() > 0.85e9
    assert result.s2_queue_mean_bytes() < 10_000
    assert result.drops == 0


def test_fig12_incast_point_tfc_vs_tcp():
    tfc = run_incast_point("tfc", 30, rounds=2)
    tcp = run_incast_point("tcp", 30, rounds=2)
    assert tfc.drops == 0
    assert tfc.max_timeouts_per_block == 0
    assert tcp.drops > 0
    assert tfc.queue_max_bytes < tcp.queue_max_bytes


def test_fig13_benchmark_fct_ordering():
    results = {
        proto: run_benchmark(
            proto, scale="testbed", duration_s=0.6, drain_s=0.4,
            query_rate_per_s=400, query_fanin=8,
        )
        for proto in ("tfc", "tcp")
    }
    assert results["tfc"].completion_fraction() == 1.0
    tfc_q = results["tfc"].query_summary_us()
    tcp_q = results["tcp"].query_summary_us()
    # At light load TCP's mean can edge out TFC (TFC pays the acquisition
    # round); the paper's decisive gap is in the congested tail.
    assert tfc_q["p99"] < tcp_q["p99"]
    assert tfc_q["p99.99"] < tcp_q["p99.99"]
    assert results["tfc"].drops == 0


def test_fig14_rho_point():
    low = run_rho_point(0.90, duration_s=0.3)
    high = run_rho_point(1.00, duration_s=0.3)
    assert low.drops == high.drops == 0
    assert high.goodput_bps >= low.goodput_bps
    assert high.queue_mean_bytes >= low.queue_mean_bytes


def test_fig15_large_scale_point():
    point = run_incast_point(
        "tfc", 60, block_bytes=64_000, rounds=2,
        rate_bps=10_000_000_000, buffer_bytes=512_000,
    )
    assert point.rounds_completed == 2
    assert point.drops == 0
    assert point.max_timeouts_per_block == 0


def test_ecmp_collision_tfc_fair_where_tcp_is_not():
    """The multi-path acceptance shape: per-link tokens keep the shared
    core uplink near-empty and split it fairly; end-to-end TCP shows
    collision-induced queue build-up and goodput asymmetry."""
    results = {
        proto: run_collision(proto, routing="ecmp", duration_s=0.05)
        for proto in ("tfc", "tcp")
    }
    tfc, tcp = results["tfc"], results["tcp"]
    assert tfc.jain_fairness > 0.95
    assert tcp.jain_fairness < 0.8
    assert tfc.max_fabric_queue_bytes < 40_000
    assert tfc.max_fabric_queue_bytes < tcp.max_fabric_queue_bytes
    assert tfc.drops == 0


def test_multipath_benchmark_smoke():
    """Fig. 13's workload survives a fat tree under per-flow ECMP."""
    result = run_multipath_benchmark(
        "tfc", routing="ecmp", duration_s=0.15, drain_s=0.3,
        query_rate_per_s=100, short_rate_per_s=20, background_rate_per_s=20,
    )
    assert result.completion_fraction() > 0.9
    assert result.drops == 0
    assert result.query_summary_us()["mean"] > 0


def test_fig16_large_benchmark_smoke():
    result = run_benchmark(
        "tfc", scale="large", duration_s=0.1, drain_s=0.3,
        query_rate_per_s=60, query_fanin=20,
        short_rate_per_s=10, background_rate_per_s=10,
    )
    assert result.completion_fraction() > 0.9
    assert result.drops == 0
    assert result.query_summary_us()["mean"] > 0
