"""Ring/tree all-reduce: step plans, barriers, completion accounting."""

import pytest

from repro.experiments.common import build_topology
from repro.metrics.fct import FctCollector
from repro.net.topology import testbed as build_testbed
from repro.sim.units import MILLISECOND, microseconds
from repro.workloads.collective import AllReduceWorkload, ring_steps, tree_steps


def make_topo():
    return build_topology(build_testbed, "tfc", 256_000, seed=1)


def test_ring_steps_shape():
    steps = ring_steps(4)
    # 2(n-1) steps, each with n concurrent neighbour transfers.
    assert len(steps) == 6
    assert all(len(step) == 4 for step in steps)
    assert steps[0] == [(0, 1), (1, 2), (2, 3), (3, 0)]


def test_tree_steps_reduce_then_broadcast():
    steps = tree_steps(7)
    n_reduce = len(steps) // 2
    # Broadcast mirrors the reduce phase with directions flipped.
    for reduce_step, bcast_step in zip(
        steps[:n_reduce], reversed(steps[n_reduce:])
    ):
        assert sorted(bcast_step) == sorted(
            (dst, src) for src, dst in reduce_step
        )
    # Reduce sends always go towards the parent (smaller index).
    for step in steps[:n_reduce]:
        assert all(dst == (src - 1) // 2 for src, dst in step)


def test_ring_allreduce_completes_with_barriers():
    topo = make_topo()
    collector = FctCollector()
    workload = AllReduceWorkload(
        topo.hosts[:6], "tfc", chunk_bytes=16_000, iterations=2,
        mode="ring", collector=collector, tenant="train",
    )
    topo.network.run_for(50 * MILLISECOND)
    assert workload.finished
    assert workload.iterations_completed == 2
    assert workload.steps_per_iteration == 10
    # Every step launches one flow per participant.
    assert workload.flows_launched == 2 * 10 * 6
    assert collector.completed(tenant="train") == workload.flows_launched
    assert len(workload.iteration_times_ns) == 2


def test_tree_allreduce_completes():
    topo = make_topo()
    workload = AllReduceWorkload(
        topo.hosts[:7], "tfc", chunk_bytes=16_000, iterations=1, mode="tree",
        compute_gap_ns=microseconds(20),
    )
    topo.network.run_for(50 * MILLISECOND)
    assert workload.finished
    assert workload.iterations_completed == 1


def test_compute_gap_delays_iterations():
    def finish_time(gap_ns):
        topo = make_topo()
        workload = AllReduceWorkload(
            topo.hosts[:4], "tfc", chunk_bytes=8_000, iterations=2,
            mode="ring", compute_gap_ns=gap_ns,
        )
        topo.network.run_for(50 * MILLISECOND)
        assert workload.finished
        return workload.finished_ns

    assert finish_time(microseconds(500)) > finish_time(0)


def test_rejects_bad_inputs():
    topo = make_topo()
    with pytest.raises(ValueError, match="mode"):
        AllReduceWorkload(topo.hosts[:4], "tfc", mode="mesh")
    with pytest.raises(ValueError, match="two"):
        AllReduceWorkload(topo.hosts[:1], "tfc")
