"""Figs. 12 and 15 — incast: goodput/queue (testbed) and throughput/
timeouts (large-scale) versus the number of senders.

Testbed variant (Fig. 12): 1 Gbps links, 256 KB buffers, 256 KB blocks,
barrier-synchronised rounds.  TFC holds 800-900 Mbps goodput at any fan-in
and keeps the queue near zero; TCP collapses beyond ~10 senders with the
queue pinned at the buffer size; DCTCP collapses beyond ~50.

Large-scale variant (Fig. 15): 10 Gbps links, 512 KB buffers, block sizes
64/128/256 KB, up to 400 senders; the metric is averaged throughput and
the *maximum timeouts one flow suffers per block*.

Both share :func:`run_incast_point`; the sweep helpers assemble the paper's
x-axis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..metrics.samplers import QueueSampler
from ..net.topology import dumbbell
from ..sim.units import GBPS, MILLISECOND, microseconds, seconds
from ..workloads.incast import IncastCoordinator
from .common import ExperimentResult, build_topology


@dataclass
class IncastPoint:
    """One (protocol, n_senders, block size) measurement."""

    protocol: str
    n_senders: int
    block_bytes: int
    goodput_bps: float
    rounds_completed: int
    max_timeouts_per_block: float
    total_timeouts: int
    queue_mean_bytes: float
    queue_max_bytes: float
    drops: int


def run_incast_point(
    protocol: str,
    n_senders: int,
    block_bytes: int = 256_000,
    rounds: int = 10,
    rate_bps: int = GBPS,
    buffer_bytes: int = 256_000,
    min_rto_ns: int = 10 * MILLISECOND,
    max_duration_s: float = 20.0,
    seed: int = 0,
) -> IncastPoint:
    """One incast configuration, run to round completion (or a time cap)."""
    topo = build_topology(
        dumbbell,
        protocol,
        buffer_bytes=buffer_bytes,
        n_senders=n_senders,
        rate_bps=rate_bps,
        seed=seed,
    )
    net = topo.network
    client = topo.hosts[-1]
    servers = topo.hosts[:n_senders]

    coordinator = IncastCoordinator(
        client,
        servers,
        protocol,
        block_bytes=block_bytes,
        rounds=rounds,
        min_rto_ns=min_rto_ns,
    )
    queue_sampler = QueueSampler(
        net.sim, topo.bottleneck("main"), microseconds(100)
    )

    horizon = seconds(max_duration_s)
    chunk = seconds(0.05)
    while not coordinator.finished and net.sim.now < horizon:
        net.run_for(chunk)

    return IncastPoint(
        protocol=protocol,
        n_senders=n_senders,
        block_bytes=block_bytes,
        goodput_bps=coordinator.goodput_bps,
        rounds_completed=coordinator.rounds_completed,
        max_timeouts_per_block=coordinator.max_timeouts_per_block,
        total_timeouts=coordinator.total_timeouts,
        queue_mean_bytes=queue_sampler.mean(),
        queue_max_bytes=queue_sampler.max(),
        drops=net.total_drops(),
    )


def run_fig12(
    protocols: Sequence[str] = ("tfc", "dctcp", "tcp"),
    sender_counts: Sequence[int] = (5, 10, 20, 40, 60, 80, 100),
    block_bytes: int = 256_000,
    rounds: int = 5,
    seed: int = 0,
) -> Dict[str, List[IncastPoint]]:
    """The Fig. 12 sweep: goodput and queue vs number of senders (1 Gbps)."""
    return {
        protocol: [
            run_incast_point(
                protocol,
                n,
                block_bytes=block_bytes,
                rounds=rounds,
                seed=seed,
            )
            for n in sender_counts
        ]
        for protocol in protocols
    }


def run_fig15(
    protocols: Sequence[str] = ("tfc", "tcp"),
    sender_counts: Sequence[int] = (50, 100, 200, 400),
    block_sizes: Sequence[int] = (64_000, 128_000, 256_000),
    rounds: int = 3,
    seed: int = 0,
) -> Dict[str, Dict[int, List[IncastPoint]]]:
    """The Fig. 15 sweep: 10 Gbps / 512 KB buffers / three block sizes."""
    results: Dict[str, Dict[int, List[IncastPoint]]] = {}
    for protocol in protocols:
        results[protocol] = {}
        for block in block_sizes:
            results[protocol][block] = [
                run_incast_point(
                    protocol,
                    n,
                    block_bytes=block,
                    rounds=rounds,
                    rate_bps=10 * GBPS,
                    buffer_bytes=512_000,
                    seed=seed,
                )
                for n in sender_counts
            ]
    return results


def run_incast_cell(
    protocol: str,
    n_senders: int,
    block_bytes: int = 256_000,
    rounds: int = 10,
    rate_bps: int = GBPS,
    buffer_bytes: int = 256_000,
    min_rto_ns: int = 10 * MILLISECOND,
    seed: int = 0,
) -> "ExperimentResult":
    """Picklable cell adapter for the parallel runner."""
    point = run_incast_point(
        protocol,
        n_senders,
        block_bytes=block_bytes,
        rounds=rounds,
        rate_bps=rate_bps,
        buffer_bytes=buffer_bytes,
        min_rto_ns=min_rto_ns,
        seed=seed,
    )
    return ExperimentResult(
        name=f"fig12:{protocol}:n{n_senders}:blk{block_bytes}:seed{seed}",
        protocol=protocol,
        scalars={
            "n_senders": float(point.n_senders),
            "block_bytes": float(point.block_bytes),
            "goodput_bps": point.goodput_bps,
            "rounds_completed": float(point.rounds_completed),
            "max_timeouts_per_block": point.max_timeouts_per_block,
            "total_timeouts": float(point.total_timeouts),
            "queue_mean_bytes": point.queue_mean_bytes,
            "queue_max_bytes": point.queue_max_bytes,
            "drops": float(point.drops),
        },
    )
