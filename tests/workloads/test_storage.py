"""Replication workload: fan-out vs chain commits, latency accounting."""

import pytest

from repro.experiments.common import build_topology
from repro.metrics.fct import FctCollector
from repro.net.topology import testbed as build_testbed
from repro.sim.units import MILLISECOND
from repro.workloads.storage import ReplicationWorkload


def run_workload(mode, replicas=2, duration_ms=2, run_ms=20, rate=3000.0):
    topo = build_topology(build_testbed, "tfc", 256_000, seed=2)
    collector = FctCollector()
    workload = ReplicationWorkload(
        topo.hosts, "tfc", duration_ms * MILLISECOND,
        replicas=replicas, mode=mode, write_rate_per_s=rate,
        value_bytes=24_000, collector=collector, tenant="store",
        seed_name="test",
    )
    topo.network.run_for(run_ms * MILLISECOND)
    return workload, collector


def test_fanout_commits_every_write():
    workload, collector = run_workload("fanout")
    assert workload.writes_launched > 0
    assert workload.commits_completed == workload.writes_launched
    assert workload.flows_launched == workload.writes_launched * 2
    assert collector.completed(tenant="store") == workload.flows_launched
    assert len(workload.commit_latencies_ns) == workload.commits_completed
    assert workload.mean_commit_latency_us > 0


def test_chain_serialises_hops():
    # Same write stream, uncongested: a chain commit serialises its hops
    # where the fan-out overlaps them, so chain commit latency must come
    # out strictly higher (the gap is < 2x because both hops re-run slow
    # start and fan-out flows share the primary's uplink).
    fanout, _ = run_workload("fanout", rate=1000.0, duration_ms=6, run_ms=40)
    chain, _ = run_workload("chain", rate=1000.0, duration_ms=6, run_ms=40)
    assert chain.writes_launched == fanout.writes_launched
    assert chain.commits_completed == chain.writes_launched
    assert chain.mean_commit_latency_us > 1.1 * fanout.mean_commit_latency_us


def test_same_seed_name_same_write_stream():
    a, _ = run_workload("fanout")
    b, _ = run_workload("fanout")
    assert a.writes_launched == b.writes_launched
    assert a.commit_latencies_ns == b.commit_latencies_ns


def test_rejects_bad_inputs():
    topo = build_topology(build_testbed, "tfc", 256_000, seed=2)
    with pytest.raises(ValueError, match="replication mode"):
        ReplicationWorkload(topo.hosts, "tfc", MILLISECOND, mode="gossip")
    with pytest.raises(ValueError, match="needs at least"):
        ReplicationWorkload(topo.hosts[:3], "tfc", MILLISECOND, replicas=3)
