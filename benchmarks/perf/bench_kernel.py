#!/usr/bin/env python
"""Regenerate BENCH_kernel.json at the repo root (run from the repo root).

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_kernel.py [--repeats N]

Keeps the existing snapshot's ``baseline`` block (the pre-fast-path seed
numbers) so the history of the speedup stays in the committed file.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "..", "src"))

from repro.perf.bench import main  # noqa: E402

if __name__ == "__main__":
    out = "BENCH_kernel.json"
    argv = ["--kind", "kernel", "--out", out]
    if os.path.exists(out):
        argv += ["--keep-baseline", out]
    sys.exit(main(argv + sys.argv[1:]))
