#!/usr/bin/env python3
"""Regenerate any paper figure from the command line.

A thin CLI over :mod:`repro.experiments` — the same drivers the benchmark
suite uses, with the knobs exposed:

    python examples/run_figure.py fig06
    python examples/run_figure.py fig12 --senders 5 20 60 --rounds 3
    python examples/run_figure.py fig14 --duration 1.0
    python examples/run_figure.py fig16 --fanin 300

Run with ``--help`` (or no arguments) for the figure list.
"""

import argparse
import sys

from repro.analysis import ascii_table
from repro.experiments import (
    run_benchmark,
    run_fig06,
    run_fig07,
    run_fig11,
    run_fig12,
    run_fig14,
    run_fig15,
    run_staggered_flows,
)


def cmd_fig06(args):
    result = run_fig06(duration_s=args.duration)
    print(f"measured rtt_b mean: {result.rttb_mean_us:.1f} us")
    print(f"referenced RTT mean: {result.reference_mean_us:.1f} us")
    print(f"gap: {result.gap_us:.1f} us")


def cmd_fig07(args):
    result = run_fig07()
    rows = [
        [f"{t:.3f}", f"{m:.1f}", f"{e:.1f}"]
        for t, m, e in result.samples[:: max(len(result.samples) // 25, 1)]
    ]
    print(ascii_table(["time (s)", "measured E", "expected E"], rows))
    print(f"mean |error|: {result.mean_error():.2f}")


def cmd_figs8_10(args):
    rows = []
    for proto in ("tfc", "dctcp", "tcp"):
        r = run_staggered_flows(proto, interval_s=0.2, tail_s=0.4, goodput_sample_ms=2.0)
        conv = r.convergence_ns(2, 1e9)
        rows.append(
            [
                proto.upper(),
                f"{r.queue_mean_bytes(int(0.2e9)) / 1000:.1f}",
                f"{r.queue_max_bytes() / 1000:.1f}",
                f"{r.aggregate_goodput_bps() / 1e6:.0f}",
                f"{r.steady_state_fairness():.4f}",
                "-" if conv is None else f"{conv / 1e6:.1f}",
            ]
        )
    print(
        ascii_table(
            ["protocol", "q mean KB", "q max KB", "goodput Mbps", "fairness", "conv ms"],
            rows,
        )
    )


def cmd_fig11(args):
    r = run_fig11(duration_s=args.duration)
    print(f"S1 uplink:  {r.s1_goodput_bps() / 1e6:.0f} Mbps")
    print(f"S2->host3:  {r.s2_goodput_bps() / 1e6:.0f} Mbps")
    print(f"S2 queue:   {r.s2_queue_mean_bytes():.0f} B mean")
    print(f"drops:      {r.drops}")


def cmd_fig12(args):
    results = run_fig12(sender_counts=tuple(args.senders), rounds=args.rounds)
    rows = []
    for i, n in enumerate(args.senders):
        row = [n]
        for proto in ("tfc", "dctcp", "tcp"):
            p = results[proto][i]
            row += [f"{p.goodput_bps / 1e6:.0f}", f"{p.max_timeouts_per_block:.2f}"]
        rows.append(row)
    print(
        ascii_table(
            ["senders", "TFC Mbps", "TFC TO", "DCTCP Mbps", "DCTCP TO", "TCP Mbps", "TCP TO"],
            rows,
        )
    )


def cmd_fig13(args):
    _benchmark_table(scale="testbed", args=args)


def cmd_fig14(args):
    points = run_fig14(duration_s=args.duration)
    print(
        ascii_table(
            ["rho0", "goodput Mbps", "queue mean B"],
            [
                [f"{p.rho0:.2f}", f"{p.goodput_bps / 1e6:.0f}", f"{p.queue_mean_bytes:.0f}"]
                for p in points
            ],
        )
    )


def cmd_fig15(args):
    results = run_fig15(sender_counts=tuple(args.senders), rounds=args.rounds)
    for proto, by_block in results.items():
        for block, points in by_block.items():
            for p in points:
                print(
                    f"{proto} block={block // 1000}KB senders={p.n_senders}: "
                    f"{p.goodput_bps / 1e9:.2f} Gbps, "
                    f"{p.max_timeouts_per_block:.2f} TO/blk"
                )


def cmd_fig16(args):
    _benchmark_table(scale="large", args=args)


def _benchmark_table(scale, args):
    rows = []
    for proto in ("tfc", "dctcp", "tcp"):
        r = run_benchmark(
            proto, scale=scale, duration_s=args.duration, drain_s=1.5,
            query_fanin=args.fanin,
        )
        q = r.query_summary_us()
        rows.append(
            [proto.upper(), f"{q['mean']:.0f}", f"{q['p99']:.0f}", f"{q['p99.9']:.0f}"]
        )
    print(ascii_table(["protocol", "query mean us", "p99 us", "p99.9 us"], rows))


FIGURES = {
    "fig06": cmd_fig06,
    "fig07": cmd_fig07,
    "fig08": cmd_figs8_10,
    "fig09": cmd_figs8_10,
    "fig10": cmd_figs8_10,
    "fig11": cmd_fig11,
    "fig12": cmd_fig12,
    "fig13": cmd_fig13,
    "fig14": cmd_fig14,
    "fig15": cmd_fig15,
    "fig16": cmd_fig16,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("figure", choices=sorted(FIGURES), help="paper figure to regenerate")
    parser.add_argument("--duration", type=float, default=0.8, help="seconds of simulated time")
    parser.add_argument("--rounds", type=int, default=3, help="incast rounds per point")
    parser.add_argument("--senders", type=int, nargs="+", default=[10, 40, 100], help="incast fan-in sweep")
    parser.add_argument("--fanin", type=int, default=None, help="query fan-in (benchmark figures)")
    args = parser.parse_args(argv)
    FIGURES[args.figure](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
