"""Scenario schema validation: precise error paths, closed mappings."""

import pytest

from repro.scenario import ScenarioError, scenario_from_dict


def minimal(**overrides):
    base = {
        "name": "t",
        "duration_ms": 5.0,
        "topology": {"kind": "dumbbell", "n_senders": 4},
        "tenants": [
            {
                "name": "a",
                "transport": "tfc",
                "workload": {"kind": "bulk"},
            }
        ],
    }
    base.update(overrides)
    return base


def test_minimal_scenario_validates():
    scenario = scenario_from_dict(minimal())
    assert scenario.name == "t"
    assert scenario.fabric_protocol() == "tfc"
    assert scenario.topology.host_count() == 5
    assert scenario.tenants[0].workload.params["size_bytes"] == 500_000


def test_unknown_top_level_field_rejected():
    with pytest.raises(ScenarioError, match="unknown field.*durations_ms"):
        scenario_from_dict(minimal(durations_ms=5.0))


def test_unknown_workload_param_has_precise_path():
    doc = minimal()
    doc["tenants"][0]["workload"] = {
        "kind": "ml_allreduce", "params": {"chunk_byte": 100}
    }
    with pytest.raises(ScenarioError) as exc:
        scenario_from_dict(doc)
    assert ".tenants[0].workload.params" in str(exc.value)
    assert "chunk_byte" in str(exc.value)


def test_wrong_type_names_the_field():
    with pytest.raises(ScenarioError, match=r"\.duration_ms"):
        scenario_from_dict(minimal(duration_ms="fast"))


def test_unknown_topology_kind():
    doc = minimal(topology={"kind": "torus"})
    with pytest.raises(ScenarioError, match=r"\.topology\.kind.*torus"):
        scenario_from_dict(doc)


def test_unknown_transport():
    doc = minimal()
    doc["tenants"][0]["transport"] = "quic"
    with pytest.raises(ScenarioError, match=r"\.tenants\[0\]\.transport"):
        scenario_from_dict(doc)


def test_selector_out_of_range_rejected_eagerly():
    doc = minimal()
    doc["tenants"][0]["hosts"] = {"range": [0, 9]}
    with pytest.raises(ScenarioError, match=r"\.tenants\[0\]\.hosts.*5 hosts"):
        scenario_from_dict(doc)


def test_selector_too_small_for_workload():
    doc = minimal()
    doc["tenants"][0]["hosts"] = {"first": 2}
    doc["tenants"][0]["workload"] = {
        "kind": "storage", "params": {"replicas": 2}
    }
    with pytest.raises(ScenarioError, match="at least 3 hosts"):
        scenario_from_dict(doc)


def test_mixed_transports_require_explicit_fabric():
    doc = minimal()
    doc["tenants"].append(
        {
            "name": "b",
            "transport": "tcp",
            "workload": {"kind": "bulk"},
        }
    )
    with pytest.raises(ScenarioError, match=r"\.fabric.*explicit"):
        scenario_from_dict(doc)
    doc["fabric"] = "dctcp"
    assert scenario_from_dict(doc).fabric_protocol() == "dctcp"


def test_duplicate_tenant_names_rejected():
    doc = minimal()
    doc["tenants"].append(dict(doc["tenants"][0]))
    with pytest.raises(ScenarioError, match="duplicate tenant names"):
        scenario_from_dict(doc)


def test_fault_requires_link_and_validates_kind():
    doc = minimal(faults=[{"kind": "link_melt", "at_ms": 1.0}])
    with pytest.raises(ScenarioError, match=r"\.faults\[0\]\.kind"):
        scenario_from_dict(doc)
    doc = minimal(faults=[{"kind": "link_down", "at_ms": 1.0}])
    with pytest.raises(ScenarioError, match=r"\.faults\[0\]\.link"):
        scenario_from_dict(doc)


def test_link_flap_requires_duration():
    doc = minimal(
        faults=[{"kind": "link_flap", "at_ms": 1.0, "link": ["SW", "R0"]}]
    )
    with pytest.raises(ScenarioError, match=r"\.faults\[0\]\.duration_ms"):
        scenario_from_dict(doc)


def test_config_block_round_trips_and_rejects_reserved():
    doc = minimal(config={"scheduler": "heap", "batch": "on"})
    scenario = scenario_from_dict(doc)
    assert scenario.config.scheduler == "heap"
    assert scenario.config.seed == scenario.seed
    doc = minimal(config={"telemetry": "counters"})
    with pytest.raises(ScenarioError, match=r"\.config\.telemetry"):
        scenario_from_dict(doc)


def test_unknown_routing_and_telemetry_rejected():
    with pytest.raises(ScenarioError, match=r"\.routing"):
        scenario_from_dict(minimal(routing="zigzag"))
    with pytest.raises(ScenarioError, match=r"\.telemetry"):
        scenario_from_dict(minimal(telemetry="verbose"))


def test_quick_duration_used_by_effective_duration():
    scenario = scenario_from_dict(minimal(quick_duration_ms=1.0))
    assert scenario.effective_duration_ns(quick=True) == 1_000_000
    assert scenario.effective_duration_ns() == 5_000_000
    # Without quick_duration_ms, quick = duration / 4.
    scenario = scenario_from_dict(minimal())
    assert scenario.effective_duration_ns(quick=True) == 1_250_000
