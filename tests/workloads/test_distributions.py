"""Tests for empirical distributions and Poisson arrivals."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.workloads.distributions import (
    SHORT_MESSAGE_SIZES,
    WEB_SEARCH_FLOW_SIZES,
    PiecewiseCdf,
    exponential_interarrival_ns,
    poisson_arrival_times_ns,
)


def test_quantile_endpoints():
    cdf = PiecewiseCdf([(10.0, 0.5), (100.0, 1.0)])
    assert cdf.quantile(0.0) == 10.0
    assert cdf.quantile(0.5) == 10.0
    assert cdf.quantile(1.0) == 100.0


def test_quantile_interpolates_geometrically():
    cdf = PiecewiseCdf([(10.0, 0.5), (1000.0, 1.0)])
    mid = cdf.quantile(0.75)
    assert mid == pytest.approx(100.0)  # geometric midpoint


def test_linear_interpolation_mode():
    cdf = PiecewiseCdf([(0.001, 0.0), (100.0, 1.0)], log_interp=False)
    assert cdf.quantile(0.5) == pytest.approx(50.0, rel=0.01)


def test_validation():
    with pytest.raises(ValueError):
        PiecewiseCdf([(10.0, 1.0)])  # too few points
    with pytest.raises(ValueError):
        PiecewiseCdf([(10.0, 0.5), (5.0, 1.0)])  # values not increasing
    with pytest.raises(ValueError):
        PiecewiseCdf([(1.0, 0.7), (2.0, 0.6)])  # probs not increasing
    with pytest.raises(ValueError):
        PiecewiseCdf([(1.0, 0.5), (2.0, 0.9)])  # does not reach 1
    with pytest.raises(ValueError):
        PiecewiseCdf([(0.0, 0.5), (2.0, 1.0)])  # log interp needs positive
    with pytest.raises(ValueError):
        PiecewiseCdf([(1.0, 0.5), (2.0, 1.0)]).quantile(1.5)


def test_web_search_distribution_is_heavy_tailed():
    cdf = WEB_SEARCH_FLOW_SIZES
    assert cdf.quantile(0.5) <= 50_000        # median is a mouse
    assert cdf.quantile(0.99) >= 5_000_000    # tail is elephants
    # Most *bytes* come from the tail: mean far above median.
    assert cdf.mean() > 10 * cdf.quantile(0.5)


def test_short_message_range():
    assert SHORT_MESSAGE_SIZES.quantile(0.0) >= 50_000
    assert SHORT_MESSAGE_SIZES.quantile(1.0) <= 1_000_000


def test_sampling_is_deterministic_per_seed():
    a = [WEB_SEARCH_FLOW_SIZES.sample(random.Random(1)) for _ in range(5)]
    b = [WEB_SEARCH_FLOW_SIZES.sample(random.Random(1)) for _ in range(5)]
    assert a == b


def test_exponential_interarrival_positive():
    rng = random.Random(0)
    gaps = [exponential_interarrival_ns(rng, 1000.0) for _ in range(100)]
    assert all(g >= 1 for g in gaps)
    # Mean gap ~ 1 ms for 1000/s.
    assert 0.3e6 < sum(gaps) / len(gaps) < 3e6
    with pytest.raises(ValueError):
        exponential_interarrival_ns(rng, 0)


def test_poisson_arrivals_sorted_within_window():
    rng = random.Random(42)
    times = poisson_arrival_times_ns(rng, 10_000.0, duration_ns=10**9, start_ns=500)
    assert times == sorted(times)
    assert all(500 < t < 10**9 + 500 for t in times)
    # ~10k arrivals expected over 1 s at 10k/s.
    assert 9_000 < len(times) < 11_000


@given(st.floats(min_value=0.0, max_value=1.0))
def test_property_quantile_within_support(p):
    value = WEB_SEARCH_FLOW_SIZES.quantile(p)
    assert 1_000 <= value <= 20_000_000


@given(st.lists(st.floats(min_value=0, max_value=1), min_size=2, max_size=20))
def test_property_quantile_monotone(ps):
    ordered = sorted(ps)
    values = [WEB_SEARCH_FLOW_SIZES.quantile(p) for p in ordered]
    assert values == sorted(values)
