"""Routing registry and selection surfaces: make/resolve/env."""

import os

import pytest

from repro.net.topology import dumbbell
from repro.routing import (
    ROUTING_ENV_VAR,
    ROUTING_NAMES,
    ROUTING_POLICIES,
    EcmpPolicy,
    FlowletPolicy,
    RoutingPolicy,
    make_routing,
    resolve_routing,
    routing_env,
)


def test_registry_names_are_sorted_and_complete():
    assert ROUTING_NAMES == tuple(sorted(ROUTING_POLICIES))
    assert set(ROUTING_NAMES) == {"single", "ecmp", "flowlet", "spray"}


@pytest.mark.parametrize("name", sorted(ROUTING_POLICIES))
def test_make_routing_round_trips_every_name(name):
    policy = make_routing(name)
    assert isinstance(policy, RoutingPolicy)
    assert policy.name == name


def test_make_routing_rejects_unknown():
    with pytest.raises(ValueError, match="unknown routing"):
        make_routing("bogus")


def test_resolve_routing_defaults_to_single(monkeypatch):
    monkeypatch.delenv(ROUTING_ENV_VAR, raising=False)
    assert resolve_routing(None).name == "single"


def test_resolve_routing_reads_env(monkeypatch):
    monkeypatch.setenv(ROUTING_ENV_VAR, "ecmp")
    assert isinstance(resolve_routing(None), EcmpPolicy)
    # An explicit argument beats the environment.
    assert resolve_routing("spray").name == "spray"


def test_resolve_routing_rejects_bad_env(monkeypatch):
    monkeypatch.setenv(ROUTING_ENV_VAR, "bogus")
    with pytest.raises(ValueError, match="REPRO_ROUTING"):
        resolve_routing(None)


def test_resolve_routing_passes_instances_through():
    policy = FlowletPolicy(gap_ns=1234)
    assert resolve_routing(policy) is policy
    assert policy.gap_ns == 1234


def test_routing_env_sets_and_restores(monkeypatch):
    monkeypatch.setenv(ROUTING_ENV_VAR, "flowlet")
    with routing_env("spray"):
        assert os.environ[ROUTING_ENV_VAR] == "spray"
    assert os.environ[ROUTING_ENV_VAR] == "flowlet"
    monkeypatch.delenv(ROUTING_ENV_VAR)
    with routing_env("ecmp"):
        assert os.environ[ROUTING_ENV_VAR] == "ecmp"
    assert ROUTING_ENV_VAR not in os.environ
    # None is a documented no-op.
    with routing_env(None):
        assert ROUTING_ENV_VAR not in os.environ


def test_routing_env_validates_eagerly(monkeypatch):
    monkeypatch.delenv(ROUTING_ENV_VAR, raising=False)
    with pytest.raises(ValueError, match="unknown routing"):
        with routing_env("bogus"):
            pass  # pragma: no cover - must not be reached
    assert ROUTING_ENV_VAR not in os.environ


def test_network_accepts_name_and_instance(monkeypatch):
    monkeypatch.delenv(ROUTING_ENV_VAR, raising=False)
    by_name = dumbbell(n_senders=2, routing="ecmp")
    assert by_name.network.routing.name == "ecmp"
    # ecmp attaches to the switch; single leaves the datapath alone.
    assert all(s.routing is by_name.network.routing for s in by_name.switches)
    plain = dumbbell(n_senders=2)
    assert plain.network.routing.name == "single"
    assert all(s.routing is None for s in plain.switches)
    custom = FlowletPolicy(gap_ns=777)
    topo = dumbbell(n_senders=2, routing=custom)
    assert topo.network.routing is custom
