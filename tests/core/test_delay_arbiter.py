"""Unit tests for the sub-MSS ACK delay function (Delay Arbiter)."""

from hypothesis import given, settings, strategies as st

from repro.core.delay import PER_PACKET_OVERHEAD, DelayArbiter
from repro.net.packet import MSS, Packet
from repro.sim.engine import Simulator
from repro.sim.units import GBPS, SECOND


def rma_ack(window):
    ack = Packet(2, 1, 20, 10, is_ack=True, rma=True, window=float(window))
    return ack


def make_arbiter(sim, rate=GBPS, fill=1.0, queue_limit=100):
    released = []
    arbiter = DelayArbiter(
        sim, rate, release=released.append, queue_limit=queue_limit,
        fill_fraction=fill,
    )
    arbiter.set_cap(20 * MSS)
    return arbiter, released


def test_large_window_passes_immediately_and_debits():
    sim = Simulator()
    arbiter, released = make_arbiter(sim)
    credit_before = arbiter.credit
    ack = rma_ack(3 * MSS)
    assert not arbiter.offer(ack)  # caller forwards it
    assert ack.window == 3 * MSS  # unmodified
    cost = 3 * MSS + 3 * PER_PACKET_OVERHEAD
    assert arbiter.credit == credit_before - cost


def test_sub_mss_with_credit_rounds_up_to_one_mss():
    sim = Simulator()
    arbiter, released = make_arbiter(sim)
    arbiter.credit = 2 * MSS
    ack = rma_ack(200)
    assert not arbiter.offer(ack)
    assert ack.window == MSS


def test_sub_mss_without_credit_is_parked_and_released_later():
    sim = Simulator()
    arbiter, released = make_arbiter(sim)
    arbiter.credit = 0.0
    ack = rma_ack(200)
    assert arbiter.offer(ack)  # consumed
    assert arbiter.queued == 1
    assert released == []
    sim.run()
    assert released == [ack]
    assert ack.window == MSS
    # Released once enough credit accrued: ~ (MSS+overhead) * 8 ns at 1G.
    assert sim.now >= (MSS + PER_PACKET_OVERHEAD) * 8 - 10


def test_parked_acks_release_in_fifo_order_at_line_rate():
    sim = Simulator()
    arbiter, released = make_arbiter(sim)
    arbiter.credit = 0.0
    acks = [rma_ack(100 + i) for i in range(5)]
    for ack in acks:
        assert arbiter.offer(ack)
    sim.run()
    assert released == acks
    # Total time ~ 5 grants at line rate.
    expected = 5 * (MSS + PER_PACKET_OVERHEAD) * 8
    assert expected - 100 <= sim.now <= expected + 1000


def test_fill_fraction_slows_release():
    sim_full = Simulator()
    full, _ = make_arbiter(sim_full, fill=1.0)
    full.credit = 0.0
    full.offer(rma_ack(100))
    sim_full.run()

    sim_half = Simulator()
    half, _ = make_arbiter(sim_half, fill=0.5)
    half.credit = 0.0
    half.offer(rma_ack(100))
    sim_half.run()
    assert sim_half.now >= 1.9 * sim_full.now


def test_queue_limit_drops_excess():
    sim = Simulator()
    arbiter, released = make_arbiter(sim, queue_limit=2)
    arbiter.credit = 0.0
    for _ in range(4):
        arbiter.offer(rma_ack(100))
    assert arbiter.queued == 2
    assert arbiter.dropped_acks == 2


def test_credit_capped():
    sim = Simulator()
    arbiter, _ = make_arbiter(sim)
    arbiter.set_cap(5 * MSS)
    arbiter.credit = 5 * MSS
    sim.schedule(SECOND // 100, lambda: None)
    sim.run()
    arbiter._refresh_credit()
    assert arbiter.credit <= 5 * MSS


def test_debt_floor_bounded():
    sim = Simulator()
    arbiter, _ = make_arbiter(sim)
    arbiter.set_cap(5 * MSS)
    for _ in range(10):
        arbiter.offer(rma_ack(10 * MSS))  # all pass (paper rule), debiting
    assert arbiter.credit >= -5 * MSS - 1


def test_sub_mss_waits_behind_debt():
    """A big grant's debt delays the next sub-MSS grant (the paper's
    compensation mechanism)."""
    sim = Simulator()
    arbiter, released = make_arbiter(sim)
    arbiter.credit = float(MSS)
    arbiter.offer(rma_ack(10 * MSS))  # passes, credit goes negative
    assert arbiter.credit < 0
    ack = rma_ack(100)
    assert arbiter.offer(ack)  # parked
    sim.run()
    assert released == [ack]
    # Had to wait for the debt plus its own cost.
    assert sim.now > (MSS + PER_PACKET_OVERHEAD) * 8


@settings(deadline=None, max_examples=30)
@given(st.lists(st.integers(min_value=1, max_value=MSS - 1), min_size=1, max_size=30))
def test_property_paced_grants_never_exceed_fill_rate(windows):
    sim = Simulator()
    releases = []
    arbiter = DelayArbiter(
        sim, GBPS, release=lambda a: releases.append(sim.now), queue_limit=1000
    )
    arbiter.set_cap(4 * MSS)
    arbiter.credit = 0.0
    for window in windows:
        arbiter.offer(rma_ack(window))
    sim.run()
    assert len(releases) == len(windows)
    # Over the whole run, granted wire bytes <= elapsed time x line rate
    # plus the initial bucket content.
    granted = len(windows) * (MSS + PER_PACKET_OVERHEAD)
    elapsed_capacity = GBPS * sim.now / (8 * SECOND)
    assert granted <= elapsed_capacity + 4 * MSS + 1
