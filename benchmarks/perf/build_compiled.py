#!/usr/bin/env python3
"""Build the opt-in compiled kernel core (``repro.sim._core_compiled``).

``repro/sim/core.py`` is the single source of truth; this script copies it
to ``repro/sim/_core_compiled.py`` and mypyc-compiles that twin in place,
so the interpreted module keeps working untouched and
``repro.sim.engine.load_core`` can prefer the extension when
``REPRO_COMPILED=on``.

Usage::

    pip install .[compiled]          # provides mypyc (skipped in minimal envs)
    python benchmarks/perf/build_compiled.py [--check] [--clean]

Exit codes: 0 on success (or a clean no-op), 3 when mypyc is unavailable
(--check distinguishes "could not" from "failed"), 1 on a genuine build
failure.  CI treats 3 as "skip the compiled shard", never as red.
"""

from __future__ import annotations

import argparse
import shutil
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
SIM = REPO / "src" / "repro" / "sim"
SOURCE = SIM / "core.py"
TWIN = SIM / "_core_compiled.py"

MYPYC_UNAVAILABLE = 3


def clean() -> None:
    """Remove the twin source and any built extension/cache next to it."""
    removed = []
    for path in SIM.glob("_core_compiled.*"):
        path.unlink()
        removed.append(path.name)
    build_dir = SIM / "build"
    if build_dir.is_dir():
        shutil.rmtree(build_dir)
        removed.append("build/")
    print(f"cleaned: {', '.join(removed) if removed else 'nothing to do'}")


def mypyc_available() -> bool:
    try:
        import mypyc  # noqa: F401
    except ImportError:
        return False
    return True


def build() -> int:
    if not mypyc_available():
        print(
            "mypyc is not installed (pip install .[compiled]); "
            "the pure-Python core remains in use.",
            file=sys.stderr,
        )
        return MYPYC_UNAVAILABLE
    twin_text = SOURCE.read_text()
    TWIN.write_text(twin_text)
    # Compile the twin in place; mypyc drops the extension module next to
    # it, which shadows the .py on import (load_core then reports
    # COMPILED=True because __file__ points at the extension).
    result = subprocess.run(
        [sys.executable, "-m", "mypyc", str(TWIN)],
        cwd=SIM,
        capture_output=True,
        text=True,
    )
    if result.returncode != 0:
        sys.stderr.write(result.stdout)
        sys.stderr.write(result.stderr)
        print("mypyc build failed; pure-Python core remains in use.",
              file=sys.stderr)
        return 1
    check = subprocess.run(
        [
            sys.executable,
            "-c",
            "from repro.sim.engine import load_core; "
            "core = load_core(True); "
            "raise SystemExit(0 if core.COMPILED else 1)",
        ],
        env={"PYTHONPATH": str(REPO / "src")},
        cwd=REPO,
    )
    if check.returncode != 0:
        print("built extension did not import as compiled", file=sys.stderr)
        return 1
    print(f"compiled core built: {TWIN.with_suffix('').name} extension ready")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="report whether mypyc is available (exit 0/3) without building",
    )
    parser.add_argument(
        "--clean",
        action="store_true",
        help="remove the compiled twin and build artifacts",
    )
    args = parser.parse_args()
    if args.clean:
        clean()
        return 0
    if args.check:
        if mypyc_available():
            print("mypyc available")
            return 0
        print("mypyc unavailable")
        return MYPYC_UNAVAILABLE
    return build()


if __name__ == "__main__":
    raise SystemExit(main())
