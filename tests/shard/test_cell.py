"""The ``shard`` runner figure: cell modes, knob pickup, registration."""

import pytest

from repro.experiments.runner import FIGURE_CELLS, CellSpec, default_plan
from repro.experiments.shard_scale import run_shard_cell


def test_shard_figure_registered():
    assert FIGURE_CELLS["shard"] is run_shard_cell
    specs = default_plan(["shard"], quick=True)
    assert [s.figure for s in specs] == ["shard"]
    assert specs[0].kwargs["mode"] == "both"
    # Cell seeds resolve through the standard identity derivation.
    assert "seed" in specs[0].resolved(3).kwargs


def test_head_to_head_cell_matches_live():
    """mode='both' runs serial + sharded on one seed and compares."""
    result = run_shard_cell(
        mode="both", k=4, pod_shards=2, duration_ms=0.5, exec_mode="inline"
    )
    assert result.name == "shard_both"
    assert result.scalars["match"] == 1.0
    assert result.scalars["shards"] == 3.0
    assert result.scalars["speedup"] > 0
    assert result.scalars["epochs"] > 1


def test_sharded_cell_reads_repro_shards(monkeypatch):
    monkeypatch.setenv("REPRO_SHARDS", "4")
    result = run_shard_cell(
        mode="sharded", k=4, duration_ms=0.25, exec_mode="inline"
    )
    assert result.scalars["shards"] == 5.0  # 4 pod shards + the core shard
    monkeypatch.delenv("REPRO_SHARDS")
    result = run_shard_cell(
        mode="sharded", k=4, duration_ms=0.25, exec_mode="inline"
    )
    assert result.scalars["shards"] == 3.0  # default: 2 pod shards + core


def test_serial_cell_has_no_coordinator_scalars():
    result = run_shard_cell(mode="serial", k=4, duration_ms=0.25)
    assert result.scalars["sharded"] == 0.0
    assert "epochs" not in result.scalars
    assert result.scalars["events"] > 0


def test_unknown_mode_rejected():
    with pytest.raises(ValueError, match="mode"):
        run_shard_cell(mode="bogus")


def test_cell_spec_runs_through_runner():
    from repro.experiments.runner import run_cells

    spec = CellSpec(
        "shard",
        {"mode": "both", "k": 4, "duration_ms": 0.25, "pod_shards": 2,
         "exec_mode": "inline"},
    )
    (result,) = run_cells([spec], jobs=1, shards=2)
    assert result.scalars["match"] == 1.0
