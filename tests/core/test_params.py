"""Validation tests for TfcParams."""

import pytest

from repro.core.params import DEFAULT_PARAMS, TfcParams


def test_defaults_match_paper():
    assert DEFAULT_PARAMS.rho0 == 0.97
    assert DEFAULT_PARAMS.alpha == 7 / 8
    assert DEFAULT_PARAMS.init_rttb_ns == 160_000
    assert DEFAULT_PARAMS.min_rtt_frame_bytes == 1500
    assert DEFAULT_PARAMS.max_delimiter_miss == 7


def test_frozen():
    with pytest.raises(Exception):
        DEFAULT_PARAMS.rho0 = 0.5  # type: ignore[misc]


@pytest.mark.parametrize(
    "kwargs",
    [
        {"rho0": 0.0},
        {"rho0": 1.5},
        {"alpha": 1.0},
        {"alpha": -0.1},
        {"init_rttb_ns": 0},
        {"rho_floor": 0.0},
        {"rho_floor": 1.0},
        {"token_adjustment": "bogus"},
        {"min_token_bdp_factor": 0.0},
        {"min_token_bdp_factor": 1.5},
        {"max_token_bdp_factor": 0.5},
        {"delay_queue_limit": 0},
        {"rttb_refresh_slots": 0},
        {"token_boost_limit": 0.9},
    ],
)
def test_invalid_values_rejected(kwargs):
    with pytest.raises(ValueError):
        TfcParams(**kwargs)


def test_valid_customisation():
    params = TfcParams(rho0=0.9, token_adjustment="eq7", queue_drain=False)
    assert params.rho0 == 0.9
    assert params.token_adjustment == "eq7"
    assert not params.queue_drain
