"""Bulk-flow helpers for the micro-benchmarks.

The goodput/queue/convergence experiments (Figs. 8-10) use a handful of
long-lived flows starting at staggered times; :func:`staggered_flows`
creates them in one call and returns the senders in start order.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..net.host import Host
from ..sim.units import MILLISECOND
from ..transport.base import Sender
from ..transport.registry import open_flow


def staggered_flows(
    sources: Sequence[Host],
    destination: Host,
    protocol: str,
    interval_ns: int,
    size_bytes: Optional[int] = None,
    first_start_ns: int = 0,
    min_rto_ns: int = 10 * MILLISECOND,
    tenant: Optional[str] = None,
) -> List[Sender]:
    """One flow per source host, started ``interval_ns`` apart.

    ``size_bytes=None`` makes them long-lived (the Fig. 8/9 pattern:
    "establish 2 flows to host H3 at the interval of 3 seconds").
    """
    senders = []
    for i, source in enumerate(sources):
        senders.append(
            open_flow(
                source,
                destination,
                protocol,
                size_bytes=size_bytes,
                start_ns=first_start_ns + i * interval_ns,
                min_rto_ns=min_rto_ns,
                tenant=tenant,
            )
        )
    return senders


def concurrent_flows(
    sources: Sequence[Host],
    destination: Host,
    protocol: str,
    size_bytes: Optional[int] = None,
    start_ns: int = 0,
    min_rto_ns: int = 10 * MILLISECOND,
    tenant: Optional[str] = None,
) -> List[Sender]:
    """One flow per source host, all started at the same instant."""
    return staggered_flows(
        sources,
        destination,
        protocol,
        interval_ns=0,
        size_bytes=size_bytes,
        first_start_ns=start_ns,
        min_rto_ns=min_rto_ns,
        tenant=tenant,
    )
