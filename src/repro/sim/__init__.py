"""Discrete-event simulation kernel: clock, events, timers, RNG, tracing."""

from .engine import Event, SimulationError, Simulator
from .rng import SeedSequence
from .timers import Timer
from .trace import Tracer
from . import trace, units

__all__ = [
    "Event",
    "SimulationError",
    "Simulator",
    "SeedSequence",
    "Timer",
    "Tracer",
    "trace",
    "units",
]
