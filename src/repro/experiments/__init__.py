"""Experiment drivers — one module per paper figure (see DESIGN.md §4)."""

from .chaos import FAULT_KINDS, ChaosResult, run_all, run_chaos
from .common import (
    ALL_PROTOCOLS,
    PROTOCOL_LABELS,
    ExperimentResult,
    build_topology,
    derive_cell_seed,
    format_table,
)
from .ecmp_collision import CollisionResult, run_collision
from .fig06_rttb import RttbResult, run_fig06
from .fig07_ne import NeResult, run_fig07
from .fig08_queue import StaggeredFlowsResult, run_staggered_flows
from .fig11_work_conserving import WorkConservingResult, run_fig11
from .fig12_incast import IncastPoint, run_fig12, run_fig15, run_incast_point
from .fig13_benchmark import BenchmarkResult, run_benchmark, run_fig13, run_fig16
from .fig14_rho import RhoPoint, run_fig14, run_rho_point
from .multipath_benchmark import run_multipath_benchmark

__all__ = [
    "ALL_PROTOCOLS",
    "PROTOCOL_LABELS",
    "build_topology",
    "ExperimentResult",
    "derive_cell_seed",
    "format_table",
    "FAULT_KINDS",
    "ChaosResult",
    "run_all",
    "run_chaos",
    "RttbResult",
    "run_fig06",
    "NeResult",
    "run_fig07",
    "StaggeredFlowsResult",
    "run_staggered_flows",
    "WorkConservingResult",
    "run_fig11",
    "IncastPoint",
    "run_fig12",
    "run_fig15",
    "run_incast_point",
    "BenchmarkResult",
    "run_benchmark",
    "run_fig13",
    "run_fig16",
    "RhoPoint",
    "run_fig14",
    "run_rho_point",
    "CollisionResult",
    "run_collision",
    "run_multipath_benchmark",
]
