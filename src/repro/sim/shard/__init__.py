"""Sharded single-simulation parallelism (conservative PDES).

Partition a fat-tree by pod — plus one shard for the core layer —
across worker processes, each running its own :class:`Simulator` with
its existing :class:`Scheduler` backend.  Synchronization is classic
conservative lookahead: the inter-shard (aggregation <-> core) link
propagation delay is the lookahead window, and shards advance in
barrier epochs bounded by ``min(all shards' next event times) +
lookahead``.  Cross-shard frames — data packets, TFC token/window
updates, PFC pause frames — travel as timestamped messages exchanged at
each barrier.

Quickstart::

    from repro.sim.shard import (
        ShardSpec, plan_fat_tree, run_sharded, run_serial_reference,
    )
    from repro.sim.shard.workload import build_pod_traffic, collect_pod_traffic

    plan = plan_fat_tree(k=4, pod_shards=2)
    spec = ShardSpec(
        plan=plan,
        build=build_pod_traffic,
        collect=collect_pod_traffic,
        end_ns=4_000_000,
        root_seed=7,
        build_kwargs={"k": 4, "protocol": "tfc"},
    )
    sharded = run_sharded(spec)           # multiprocessing, inline fallback
    serial = run_serial_reference(spec)   # same workload, one Simulator
    assert sharded.merged() == serial.metrics

Design notes, the lookahead proof sketch and the tie-order caveat live
in DESIGN.md §6i.
"""

from .partition import ShardContext, ShardError, ShardPlan, plan_fat_tree, shard_seed
from .boundary import BoundaryCapture, attach_shard
from .flows import open_shard_flow
from .runner import (
    SerialResult,
    ShardSpec,
    ShardedResult,
    run_serial_reference,
    run_sharded,
)

__all__ = [
    "BoundaryCapture",
    "SerialResult",
    "ShardContext",
    "ShardError",
    "ShardPlan",
    "ShardSpec",
    "ShardedResult",
    "attach_shard",
    "open_shard_flow",
    "plan_fat_tree",
    "run_serial_reference",
    "run_sharded",
    "shard_seed",
]
