"""Output-port packet queues.

Two disciplines are enough for the paper's evaluation:

* :class:`DropTailQueue` — FIFO with a byte capacity; arrivals that do not
  fit are dropped (the testbed NetFPGA boards have 256 KB per port).
* :class:`EcnQueue` — the same FIFO, but arrivals are CE-marked when the
  instantaneous queue occupancy exceeds the threshold ``K`` (DCTCP's step
  marking at the switch).

Queues never touch the simulator clock; the owning :class:`~repro.net.port.
Port` drives them.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from .packet import Packet


class DropTailQueue:
    """FIFO byte-bounded queue with drop-tail admission."""

    def __init__(self, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._queue: Deque[Packet] = deque()
        self._bytes = 0
        self.drops = 0
        self.dropped_bytes = 0
        self.enqueues = 0
        self.max_bytes_seen = 0

    # ------------------------------------------------------------------
    @property
    def byte_length(self) -> int:
        """Current occupancy in bytes (buffered IP packet bytes)."""
        return self._bytes

    @property
    def packet_length(self) -> int:
        """Current occupancy in packets."""
        return len(self._queue)

    def admit(self, packet: Packet) -> bool:
        """Whether ``packet`` fits right now (without enqueueing it)."""
        return self._bytes + packet.size <= self.capacity_bytes

    def enqueue(self, packet: Packet) -> bool:
        """Append ``packet``; returns False (and counts a drop) on overflow."""
        if not self.admit(packet):
            self.drops += 1
            self.dropped_bytes += packet.size
            return False
        self._mark(packet)
        self._queue.append(packet)
        self._bytes += packet.size
        self.enqueues += 1
        if self._bytes > self.max_bytes_seen:
            self.max_bytes_seen = self._bytes
        return True

    def dequeue(self) -> Optional[Packet]:
        """Pop the head packet, or None when empty."""
        if not self._queue:
            return None
        packet = self._queue.popleft()
        self._bytes -= packet.size
        return packet

    def _mark(self, packet: Packet) -> None:
        """Admission-time hook for marking disciplines (no-op here)."""

    def __len__(self) -> int:
        return len(self._queue)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} {self._bytes}/{self.capacity_bytes}B"
            f" pkts={len(self._queue)} drops={self.drops}>"
        )


class RandomDropQueue(DropTailQueue):
    """Drop-tail queue that additionally drops a random fraction of
    arrivals — a failure-injection harness for loss-recovery testing
    (lossy optics, early-discard policies).  Not used by the paper's
    experiments; used by the robustness tests.
    """

    def __init__(self, capacity_bytes: int, drop_probability: float, rng):
        super().__init__(capacity_bytes)
        if not 0.0 <= drop_probability < 1.0:
            raise ValueError(
                f"drop probability must be in [0, 1), got {drop_probability}"
            )
        self.drop_probability = drop_probability
        self._rng = rng
        self.random_drops = 0

    def enqueue(self, packet: Packet) -> bool:
        if self.drop_probability > 0 and self._rng.random() < self.drop_probability:
            self.random_drops += 1
            self.drops += 1
            self.dropped_bytes += packet.size
            return False
        return super().enqueue(packet)


class EcnQueue(DropTailQueue):
    """Drop-tail queue with DCTCP step marking.

    An arriving packet is CE-marked when the queue occupancy *at admission*
    (including the packet itself) exceeds ``mark_threshold_bytes``, matching
    the instantaneous-queue marking DCTCP configures on switches.
    """

    def __init__(self, capacity_bytes: int, mark_threshold_bytes: int):
        super().__init__(capacity_bytes)
        if mark_threshold_bytes <= 0:
            raise ValueError(
                f"mark threshold must be positive, got {mark_threshold_bytes}"
            )
        self.mark_threshold_bytes = mark_threshold_bytes
        self.marks = 0

    def _mark(self, packet: Packet) -> None:
        if (
            packet.ecn_capable
            and self._bytes + packet.size > self.mark_threshold_bytes
        ):
            packet.ecn_ce = True
            self.marks += 1
