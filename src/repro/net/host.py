"""End hosts.

A :class:`Host` terminates transport connections.  Packets arriving from the
NIC are demultiplexed to connection endpoints by flow key (with a listener
table for passive opens, like the OS dispatching a SYN to a listening
socket).  Each delivery is delayed by a small random *host processing
delay*; the paper leans on this jitter to explain why the measured
queue-free RTT (``rtt_b``) sits below the average referenced RTT (Fig. 6),
so it is modelled explicitly and is configurable per host.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Protocol

from ..sim.engine import Simulator
from ..sim.rng import SeedSequence
from ..sim.trace import Tracer
from .node import Endpoint
from .packet import FlowKey, Packet


class PacketSink(Protocol):
    """Anything that can accept a delivered packet (connection endpoints)."""

    def on_packet(self, packet: Packet) -> None:  # pragma: no cover - protocol
        ...


class Host(Endpoint):
    """A server: one NIC port plus a transport demux table."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        name: str,
        tracer: Tracer,
        seeds: SeedSequence,
        processing_delay_ns: int = 2_000,
        processing_jitter_ns: int = 4_000,
    ):
        super().__init__(sim, node_id, name, tracer)
        self._rng = seeds.stream(f"host:{name}:proc")
        self._randrange = self._rng.randrange  # bound once; per-packet call
        self.processing_delay_ns = processing_delay_ns
        self.processing_jitter_ns = processing_jitter_ns
        self._connections: Dict[FlowKey, PacketSink] = {}
        self._listeners: Dict[int, Callable[[Packet], Optional[PacketSink]]] = {}
        self._port_counter = itertools.count(10_000)
        self.paused = False
        self._paused_rx: List[Packet] = []
        self.pauses = 0
        # Set by installers that attach NIC agents (repro.net.bfc); the
        # per-packet agent probe in handle_packet is gated on it so the
        # common no-agent datapath pays one boolean check.
        self.nic_agents_installed = False

    # ------------------------------------------------------------------
    # Socket-table management
    # ------------------------------------------------------------------
    def allocate_port(self) -> int:
        """Pick a fresh ephemeral source port."""
        return next(self._port_counter)

    def register_connection(self, key: FlowKey, endpoint: PacketSink) -> None:
        """Bind ``endpoint`` to the *incoming* flow key it should receive."""
        if key in self._connections:
            raise ValueError(f"{self.name}: flow key {key} already bound")
        self._connections[key] = endpoint

    def unregister_connection(self, key: FlowKey) -> None:
        """Release a binding (idempotent, for teardown paths)."""
        self._connections.pop(key, None)

    def listen(
        self, port: int, acceptor: Callable[[Packet], Optional[PacketSink]]
    ) -> None:
        """Register a passive-open handler for SYNs addressed to ``port``.

        The acceptor returns the endpoint that will own the new connection
        (which must register itself), or None to ignore the SYN.
        """
        self._listeners[port] = acceptor

    # ------------------------------------------------------------------
    # Fault hooks: host stall (VM pause, GC, kernel soft-lockup)
    # ------------------------------------------------------------------
    def pause(self) -> None:
        """Freeze the host: hold arriving packets, stop NIC transmission.

        Simulator timers belonging to the host's transports still fire (a
        stalled OS loses its short-term timekeeping too, but modelling that
        buys nothing: an RTO retransmission during the pause just queues in
        the paused NIC like everything else).
        """
        if self.paused:
            return
        self.paused = True
        self.pauses += 1
        for port in self.ports:
            port.pause()

    def resume(self) -> None:
        """Unfreeze: deliver held packets and restart NIC transmission."""
        if not self.paused:
            return
        self.paused = False
        for port in self.ports:
            port.resume()
        pending, self._paused_rx = self._paused_rx, []
        for packet in pending:
            self._schedule_delivery(packet)

    # ------------------------------------------------------------------
    # Datapath
    # ------------------------------------------------------------------
    def send(self, packet: Packet) -> None:
        """Transmit via the single NIC port."""
        self.ports[0].send(packet)

    def handle_packet(self, packet: Packet, in_port_index: int) -> None:
        # NIC agent hook, mirroring the switch datapath: a protocol may
        # attach per-NIC logic (BFC's per-flow pause handling) that
        # consumes control frames before demux.
        if self.nic_agents_installed:
            agent = self.ports[in_port_index].agent
            if agent is not None and agent.on_reverse_arrival(packet):
                return
        op = packet.pfc_op
        if op is not None:
            # MAC-control pause frame: consumed by the NIC itself.  Only
            # transmission stops — reception continues (unlike the host
            # *stall* fault above, which freezes the whole machine).
            if op == "xoff":
                self.ports[in_port_index].pause()
            elif not self.paused:  # a stalled host stays stalled
                self.ports[in_port_index].resume()
            return
        if self.paused:
            self._paused_rx.append(packet)
            return
        self._schedule_delivery(packet)

    def _schedule_delivery(self, packet: Packet) -> None:
        delay = self.processing_delay_ns
        jitter = self.processing_jitter_ns
        if jitter > 0:
            delay += self._randrange(jitter + 1)
        self.sim.schedule(delay, self._deliver, packet)

    def _deliver(self, packet: Packet) -> None:
        endpoint = self._connections.get(packet.flow_key)
        if endpoint is not None:
            endpoint.on_packet(packet)
            return
        if packet.syn and not packet.is_ack:
            acceptor = self._listeners.get(packet.dport)
            if acceptor is not None:
                new_endpoint = acceptor(packet)
                if new_endpoint is not None:
                    new_endpoint.on_packet(packet)
                return
        # Late segment for a closed connection; real stacks send RST, we drop.
        self.tracer.emit("host.orphan_packet", packet=packet, host=self)
